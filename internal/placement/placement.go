// Package placement is the standalone network-aware task placement
// decision service: the paper's probabilistic placement rule (Formulas
// 1–5, Algorithms 1–2) served over an explicit cluster state, with no
// dependency on the discrete-event engine.
//
// The package splits the decision problem into two halves:
//
//   - Service owns the shared scheduler-visible state — the network,
//     the replicated block store, the slot state with its Avail
//     snapshots and per-class counts — behind a
//     writer-applies-deltas / concurrent-readers-decide contract: the
//     Apply* methods mutate under the write lock (bumping a delta
//     epoch and eagerly rematerializing the availability snapshots),
//     while decisions run under the read lock.
//   - Decider is one client's decision session: it carries the
//     per-client cost caches (MapCoster rows, reduce costers), the
//     client's RNG for the Bernoulli gate, and the observer stream
//     the decision breakdown is emitted to. A Decider is not safe for
//     concurrent use — concurrent readers each hold their own — but
//     any number of Deciders may decide concurrently against one
//     Service, safe under the race detector.
//
// The simulation engine is the first client: its schedulers route
// AssignMap/AssignReduce through a Decider over a Service wrapping the
// engine's live objects, producing bit-identical decision streams. The
// Replay driver is the second: it re-derives a recorded decision
// stream against a Service fed only deltas, proving the engine-free
// path computes the exact same numbers.
package placement

import (
	"fmt"
	"math"
	"sync"

	"mapsched/internal/cluster"
	"mapsched/internal/core"
	"mapsched/internal/hdfs"
	"mapsched/internal/topology"
)

// Deps are the state objects a Service is built over. In embedded use
// (the simulation engine) they are the engine's live objects; in
// standalone use the caller constructs them directly.
type Deps struct {
	// Net resolves node distances (and racks for locality tagging).
	Net topology.Network
	// Store is the replicated block store map costs read from.
	Store *hdfs.Store
	// Rate observes path rates; required for ModeNetworkCondition.
	Rate topology.RateObserver
	// Slots is the cluster slot state whose availability sets form the
	// N_m / N_r of Formulas 4–5.
	Slots *cluster.State
	// Mode selects hop-count or network-condition distances.
	Mode core.Mode
}

// linkScaler is implemented by networks whose host access links can be
// rescaled at runtime (topology.Cluster).
type linkScaler interface {
	SetHostLinkFactor(a topology.NodeID, factor float64)
}

// Service is the shared half of the placement decision service. All
// exported methods are safe for concurrent use; see the package
// comment for the writer/reader contract.
//
// Embedded note: when the Service wraps a single-threaded simulation's
// live objects, the engine mutates them directly (slot acquire on task
// launch, replica loss on faults) instead of calling Apply* — the
// concurrency contract then degenerates to plain single-threaded
// access, and the delta epoch only advances for deltas applied through
// the Service.
//
// Every Apply*/Update* delta method journals before it mutates; the
// deltajournal analyzer enforces the pairing.
//
//lint:journaled
type Service struct {
	mu sync.RWMutex

	// net, rate, mode and classes are set once in NewService and never
	// written again, so they are safe to read without the lock.
	net     topology.Network
	rate    topology.RateObserver
	mode    core.Mode
	classes *topology.Classes

	// store and slots are the mutable scheduler-visible state the
	// writer/reader contract exists for: deltas rewrite them under the
	// write lock, decisions read them under the read lock.
	//
	//lint:guarded mu
	store *hdfs.Store
	//lint:guarded mu
	slots *cluster.State

	// epoch counts deltas applied through the Service. Deciders record
	// the value they observed so clients can order decisions against
	// state updates.
	//
	//lint:guarded mu
	epoch uint64

	// journal, when attached via StartJournal, records every delta
	// before it applies (see journal.go).
	//
	//lint:guarded mu
	journal *journalWriter

	// linkFactors tracks the current host-link scale factor per node
	// (nil until the first ApplyLinkFactor) so checkpoints can capture
	// non-nominal links.
	//
	//lint:guarded mu
	linkFactors []float64
}

// NewService builds a decision service over the given state. The slot
// state adopts the network's distance-class structure (hop mode), so
// its availability snapshots carry the per-class counts the collapsed
// cost sums consume.
//
//lint:allow lockheld constructor: s is unpublished, no reader can exist before return
func NewService(d Deps) (*Service, error) {
	if d.Slots == nil {
		return nil, fmt.Errorf("placement: nil slot state")
	}
	// Validates the net/store/rate/mode combination and derives the
	// class structure; Deciders rebuild their own models from the same
	// inputs, so this one is only used for the validation and classes.
	cm, err := core.NewCostModel(d.Net, d.Store, d.Rate, d.Mode)
	if err != nil {
		return nil, err
	}
	if d.Net.Size() != d.Slots.Size() {
		return nil, fmt.Errorf("placement: network has %d nodes, slot state %d", d.Net.Size(), d.Slots.Size())
	}
	s := &Service{
		net:     d.Net,
		store:   d.Store,
		rate:    d.Rate,
		slots:   d.Slots,
		mode:    d.Mode,
		classes: cm.Classes(),
	}
	s.slots.SetClasses(s.classes)
	s.refreshLocked()
	return s, nil
}

// refreshLocked rematerializes the availability snapshot slices so
// readers never trigger the slot state's lazy rebuild (a write) under
// the read lock. Callers hold the write lock (or own the Service
// exclusively, as in NewService).
func (s *Service) refreshLocked() {
	s.slots.AvailMapNodes()
	s.slots.AvailReduceNodes()
}

// appliedLocked finishes a delta under the write lock: rematerialize
// snapshots, bump the epoch.
func (s *Service) appliedLocked() {
	s.refreshLocked()
	s.epoch++
}

// Epoch returns the number of deltas applied through the Service.
func (s *Service) Epoch() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.epoch
}

// Mode returns the distance interpretation the service was built with.
func (s *Service) Mode() core.Mode { return s.mode }

// Slots exposes the underlying slot state for embedded (single-
// threaded) clients; standalone concurrent clients must use the Apply*
// deltas instead. Audited escape hatch: the returned pointer leaves
// the lock scope by design — the embedded engine owns the whole
// process single-threaded, and the concurrent stress tests never touch
// it. Concurrent mutation through it would corrupt the epoch/snapshot
// bookkeeping the auditor checks.
//
//lint:allow lockheld audited escape hatch for single-threaded embedded clients (see doc)
func (s *Service) Slots() *cluster.State { return s.slots }

// Store exposes the underlying block store for embedded (single-
// threaded) clients only; the same audited-escape-hatch caveats as
// Slots apply.
//
//lint:allow lockheld audited escape hatch for single-threaded embedded clients (see doc)
func (s *Service) Store() *hdfs.Store { return s.store }

// View is a consistent read of the service's availability state. Views
// are handed to concurrent readers by value, and the Avail node/count
// slices alias the published snapshots — once built, a View is never
// written again.
//
//lint:immutable-after-publish
type View struct {
	AvailMap    core.Avail
	AvailReduce core.Avail
	Epoch       uint64
}

// Snapshot returns the current availability sets with their per-class
// counts and identity versions, plus the delta epoch, read atomically
// under the read lock. The node slices are copy-on-write (the slot
// state allocates a fresh slice per membership change), so a returned
// View stays internally consistent even as later deltas apply.
func (s *Service) Snapshot() View {
	s.mu.RLock()
	defer s.mu.RUnlock()
	am, amCounts, amVer := s.slots.AvailMap()
	ar, arCounts, arVer := s.slots.AvailReduce()
	return View{
		AvailMap:    core.Avail{Nodes: am, Counts: amCounts, Version: amVer},
		AvailReduce: core.Avail{Nodes: ar, Counts: arCounts, Version: arVer},
		Epoch:       s.epoch,
	}
}

// SlotKind selects which slot type a slot delta concerns.
type SlotKind int

// Slot kinds.
const (
	MapSlot SlotKind = iota
	ReduceSlot
)

// String names the slot kind.
func (k SlotKind) String() string {
	if k == ReduceSlot {
		return "reduce"
	}
	return "map"
}

// nodeLocked resolves a delta's node ID against the cluster, rejecting
// IDs outside it. Caller holds the write lock.
func (s *Service) nodeLocked(n topology.NodeID) (*cluster.Node, error) {
	if int(n) < 0 || int(n) >= s.slots.Size() {
		return nil, fmt.Errorf("%w: node %d of %d", ErrUnknownNode, n, s.slots.Size())
	}
	return s.slots.Node(n), nil
}

// blockLocked validates a delta's block ID against the store.
func (s *Service) blockLocked(id hdfs.BlockID) error {
	if int(id) < 0 || int(id) >= s.store.NumBlocks() {
		return fmt.Errorf("%w: block %d of %d", ErrUnknownBlock, id, s.store.NumBlocks())
	}
	return nil
}

// ApplySlotAcquire records that a task occupied a slot of the given
// kind on node n (a placement decision was committed). The delta is
// validated against current state first: an unknown node, an offline or
// blacklisted node, or a node with no free slot of the kind rejects it
// with a typed ErrDeltaConflict error and no state change.
func (s *Service) ApplySlotAcquire(k SlotKind, n topology.NodeID) error {
	return s.ApplySlotAcquireNoted(k, n, "", nil, nil)
}

// ApplySlotAcquireNoted is ApplySlotAcquire with a journal annotation
// and client hooks, all under one write lock (one delta, one epoch):
// after the service-level validation passes, pre (if non-nil) may
// reject the delta with client-level validation; note is recorded in
// the journal and surfaced by Recover; fn (if non-nil) runs after the
// slot is acquired to mutate client-owned state the way Update would.
func (s *Service) ApplySlotAcquireNoted(k SlotKind, n topology.NodeID, note string, pre func() error, fn func()) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	node, err := s.nodeLocked(n)
	if err != nil {
		return err
	}
	if node.Offline() || node.Blacklisted() {
		return fmt.Errorf("%w: acquire on node %d", ErrNodeUnavailable, n)
	}
	free := node.FreeMapSlots()
	if k == ReduceSlot {
		free = node.FreeReduceSlots()
	}
	if free <= 0 {
		return fmt.Errorf("%w: %s acquire on node %d", ErrNoFreeSlot, k, n)
	}
	if pre != nil {
		if err := pre(); err != nil {
			return err
		}
	}
	if err := s.journalLocked(Record{Op: OpAcquire, Kind: k.String(), Node: int(n), Note: note}); err != nil {
		return err
	}
	// Validation above guarantees the acquire succeeds, so the journal
	// record written first cannot end up describing a rejected delta.
	if k == ReduceSlot {
		err = node.AcquireReduce()
	} else {
		err = node.AcquireMap()
	}
	if err != nil {
		return fmt.Errorf("%w: %v", ErrNoFreeSlot, err)
	}
	if fn != nil {
		fn()
	}
	s.appliedLocked()
	return nil
}

// ApplySlotRelease records that a task freed a slot of the given kind
// on node n (it finished or was killed). A release without a matching
// acquire is rejected with ErrSlotNotHeld (it used to panic deep in the
// cluster state).
func (s *Service) ApplySlotRelease(k SlotKind, n topology.NodeID) error {
	return s.ApplySlotReleaseNoted(k, n, "", nil, nil)
}

// ApplySlotReleaseNoted is ApplySlotRelease with a journal annotation
// and client hooks; see ApplySlotAcquireNoted for the contract.
func (s *Service) ApplySlotReleaseNoted(k SlotKind, n topology.NodeID, note string, pre func() error, fn func()) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	node, err := s.nodeLocked(n)
	if err != nil {
		return err
	}
	held := node.UsedMapSlots()
	if k == ReduceSlot {
		held = node.UsedReduceSlots()
	}
	if held <= 0 {
		return fmt.Errorf("%w: %s release on node %d", ErrSlotNotHeld, k, n)
	}
	if pre != nil {
		if err := pre(); err != nil {
			return err
		}
	}
	if err := s.journalLocked(Record{Op: OpRelease, Kind: k.String(), Node: int(n), Note: note}); err != nil {
		return err
	}
	if k == ReduceSlot {
		node.ReleaseReduce()
	} else {
		node.ReleaseMap()
	}
	if fn != nil {
		fn()
	}
	s.appliedLocked()
	return nil
}

// ApplyReplicaAdd records a new replica of block id on node n (e.g. a
// re-replication finishing). Reports whether the replica set changed —
// adding a replica the node already holds is a no-op, not a conflict.
// Unknown nodes and blocks are rejected.
func (s *Service) ApplyReplicaAdd(id hdfs.BlockID, n topology.NodeID) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.nodeLocked(n); err != nil {
		return false, err
	}
	if err := s.blockLocked(id); err != nil {
		return false, err
	}
	if s.store.HasReplica(id, n) {
		return false, nil
	}
	if err := s.journalLocked(Record{Op: OpReplicaAdd, Block: int(id), Node: int(n)}); err != nil {
		return false, err
	}
	s.store.AddReplica(id, n)
	s.appliedLocked()
	return true, nil
}

// ApplyReplicaLoss records the loss of block id's replica on node n
// (disk failure, decommission). Reports whether a replica was removed —
// losing a replica the node does not hold is a no-op. Unknown nodes and
// blocks are rejected.
func (s *Service) ApplyReplicaLoss(id hdfs.BlockID, n topology.NodeID) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.nodeLocked(n); err != nil {
		return false, err
	}
	if err := s.blockLocked(id); err != nil {
		return false, err
	}
	if !s.store.HasReplica(id, n) {
		return false, nil
	}
	if err := s.journalLocked(Record{Op: OpReplicaLoss, Block: int(id), Node: int(n)}); err != nil {
		return false, err
	}
	s.store.RemoveReplica(id, n)
	s.appliedLocked()
	return true, nil
}

// ApplyNodeReplicaLoss drops every replica hosted on node n (the node
// died with its disks). Returns the number of replicas removed; zero
// removals still count as one applied delta, matching the journal.
func (s *Service) ApplyNodeReplicaLoss(n topology.NodeID) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.nodeLocked(n); err != nil {
		return 0, err
	}
	if err := s.journalLocked(Record{Op: OpNodeReplicaLoss, Node: int(n)}); err != nil {
		return 0, err
	}
	removed := s.store.RemoveNodeReplicas(n)
	s.appliedLocked()
	return removed, nil
}

// ApplyNodeOffline marks node n dead (true) or revived (false): an
// offline node offers no slots and drops out of the Avail sets.
// Setting the flag to its current value is idempotent but still counts
// as an applied delta.
func (s *Service) ApplyNodeOffline(n topology.NodeID, off bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	node, err := s.nodeLocked(n)
	if err != nil {
		return err
	}
	if err := s.journalLocked(Record{Op: OpOffline, Node: int(n), On: off}); err != nil {
		return err
	}
	node.SetOffline(off)
	s.appliedLocked()
	return nil
}

// ApplyNodeBlacklist marks node n blacklisted (no new tasks, running
// ones keep their slots) or clears the mark.
func (s *Service) ApplyNodeBlacklist(n topology.NodeID, b bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	node, err := s.nodeLocked(n)
	if err != nil {
		return err
	}
	if err := s.journalLocked(Record{Op: OpBlacklist, Node: int(n), On: b}); err != nil {
		return err
	}
	node.SetBlacklisted(b)
	s.appliedLocked()
	return nil
}

// Update runs fn under the write lock and counts it as one applied
// delta: use it for mutations of client-owned state that decisions
// read — task states, job membership — so they stay inside the
// writer/reader contract. fn may touch the state behind Slots() and
// Store() directly but must not call other Service methods (they take
// the same lock). The availability snapshots are rematerialized after
// fn returns.
//
// With a journal attached the delta is recorded as an opaque update:
// recovery bumps the epoch but cannot re-run fn, so journaled services
// should describe the mutation through UpdateNoted and rebuild the
// client state from the surfaced notes.
func (s *Service) Update(fn func()) {
	// The only possible failure is a broken journal; the epoch still
	// advances so the caller's mutation stays ordered, matching the
	// pre-journal contract of this method.
	_ = s.UpdateNoted("", fn)
}

// UpdateNoted is Update with a journal annotation: note rides in the
// journal record and is surfaced by Recover, letting the client replay
// its half of the mutation. Returns ErrJournalBroken (delta rejected,
// fn not run) when the journal append fails.
func (s *Service) UpdateNoted(note string, fn func()) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.journalLocked(Record{Op: OpUpdate, Note: note}); err != nil {
		return err
	}
	fn()
	s.appliedLocked()
	return nil
}

// ApplyLinkFactor rescales node n's host access link capacity by
// factor (1 restores nominal, 0 severs). Only supported when the
// network exposes runtime link scaling; network-condition costs then
// see the change through the rate observer. Unknown nodes, unsupported
// networks and non-finite or negative factors are rejected.
func (s *Service) ApplyLinkFactor(n topology.NodeID, factor float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.nodeLocked(n); err != nil {
		return err
	}
	ls, ok := s.net.(linkScaler)
	if !ok {
		return fmt.Errorf("%w: network %T does not support link rescaling", ErrUnknownLink, s.net)
	}
	if math.IsNaN(factor) || math.IsInf(factor, 0) || factor < 0 {
		return fmt.Errorf("%w: %v", ErrBadLinkFactor, factor)
	}
	if err := s.journalLocked(Record{Op: OpLinkFactor, Node: int(n), F: factor}); err != nil {
		return err
	}
	ls.SetHostLinkFactor(n, factor)
	if s.linkFactors == nil {
		s.linkFactors = make([]float64, s.slots.Size())
		for i := range s.linkFactors {
			s.linkFactors[i] = 1
		}
	}
	s.linkFactors[n] = factor
	s.appliedLocked()
	return nil
}
