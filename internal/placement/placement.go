// Package placement is the standalone network-aware task placement
// decision service: the paper's probabilistic placement rule (Formulas
// 1–5, Algorithms 1–2) served over an explicit cluster state, with no
// dependency on the discrete-event engine.
//
// The package splits the decision problem into two halves:
//
//   - Service owns the shared scheduler-visible state — the network,
//     the replicated block store, the slot state with its Avail
//     snapshots and per-class counts — behind a
//     writer-applies-deltas / concurrent-readers-decide contract: the
//     Apply* methods mutate under the write lock (bumping a delta
//     epoch and eagerly rematerializing the availability snapshots),
//     while decisions run under the read lock.
//   - Decider is one client's decision session: it carries the
//     per-client cost caches (MapCoster rows, reduce costers), the
//     client's RNG for the Bernoulli gate, and the observer stream
//     the decision breakdown is emitted to. A Decider is not safe for
//     concurrent use — concurrent readers each hold their own — but
//     any number of Deciders may decide concurrently against one
//     Service, safe under the race detector.
//
// The simulation engine is the first client: its schedulers route
// AssignMap/AssignReduce through a Decider over a Service wrapping the
// engine's live objects, producing bit-identical decision streams. The
// Replay driver is the second: it re-derives a recorded decision
// stream against a Service fed only deltas, proving the engine-free
// path computes the exact same numbers.
package placement

import (
	"fmt"
	"sync"

	"mapsched/internal/cluster"
	"mapsched/internal/core"
	"mapsched/internal/hdfs"
	"mapsched/internal/topology"
)

// Deps are the state objects a Service is built over. In embedded use
// (the simulation engine) they are the engine's live objects; in
// standalone use the caller constructs them directly.
type Deps struct {
	// Net resolves node distances (and racks for locality tagging).
	Net topology.Network
	// Store is the replicated block store map costs read from.
	Store *hdfs.Store
	// Rate observes path rates; required for ModeNetworkCondition.
	Rate topology.RateObserver
	// Slots is the cluster slot state whose availability sets form the
	// N_m / N_r of Formulas 4–5.
	Slots *cluster.State
	// Mode selects hop-count or network-condition distances.
	Mode core.Mode
}

// linkScaler is implemented by networks whose host access links can be
// rescaled at runtime (topology.Cluster).
type linkScaler interface {
	SetHostLinkFactor(a topology.NodeID, factor float64)
}

// Service is the shared half of the placement decision service. All
// exported methods are safe for concurrent use; see the package
// comment for the writer/reader contract.
//
// Embedded note: when the Service wraps a single-threaded simulation's
// live objects, the engine mutates them directly (slot acquire on task
// launch, replica loss on faults) instead of calling Apply* — the
// concurrency contract then degenerates to plain single-threaded
// access, and the delta epoch only advances for deltas applied through
// the Service.
type Service struct {
	mu sync.RWMutex

	net     topology.Network
	store   *hdfs.Store
	rate    topology.RateObserver
	slots   *cluster.State
	mode    core.Mode
	classes *topology.Classes

	// epoch counts deltas applied through the Service. Deciders record
	// the value they observed so clients can order decisions against
	// state updates.
	epoch uint64
}

// NewService builds a decision service over the given state. The slot
// state adopts the network's distance-class structure (hop mode), so
// its availability snapshots carry the per-class counts the collapsed
// cost sums consume.
func NewService(d Deps) (*Service, error) {
	if d.Slots == nil {
		return nil, fmt.Errorf("placement: nil slot state")
	}
	// Validates the net/store/rate/mode combination and derives the
	// class structure; Deciders rebuild their own models from the same
	// inputs, so this one is only used for the validation and classes.
	cm, err := core.NewCostModel(d.Net, d.Store, d.Rate, d.Mode)
	if err != nil {
		return nil, err
	}
	if d.Net.Size() != d.Slots.Size() {
		return nil, fmt.Errorf("placement: network has %d nodes, slot state %d", d.Net.Size(), d.Slots.Size())
	}
	s := &Service{
		net:     d.Net,
		store:   d.Store,
		rate:    d.Rate,
		slots:   d.Slots,
		mode:    d.Mode,
		classes: cm.Classes(),
	}
	s.slots.SetClasses(s.classes)
	s.refreshLocked()
	return s, nil
}

// refreshLocked rematerializes the availability snapshot slices so
// readers never trigger the slot state's lazy rebuild (a write) under
// the read lock. Callers hold the write lock (or own the Service
// exclusively, as in NewService).
func (s *Service) refreshLocked() {
	s.slots.AvailMapNodes()
	s.slots.AvailReduceNodes()
}

// applied finishes a delta: rematerialize snapshots, bump the epoch.
func (s *Service) applied() {
	s.refreshLocked()
	s.epoch++
}

// Epoch returns the number of deltas applied through the Service.
func (s *Service) Epoch() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.epoch
}

// Mode returns the distance interpretation the service was built with.
func (s *Service) Mode() core.Mode { return s.mode }

// Slots exposes the underlying slot state for embedded (single-
// threaded) clients; standalone concurrent clients must use the Apply*
// deltas instead.
func (s *Service) Slots() *cluster.State { return s.slots }

// Store exposes the underlying block store (embedded clients only).
func (s *Service) Store() *hdfs.Store { return s.store }

// View is a consistent read of the service's availability state.
type View struct {
	AvailMap    core.Avail
	AvailReduce core.Avail
	Epoch       uint64
}

// Snapshot returns the current availability sets with their per-class
// counts and identity versions, plus the delta epoch, read atomically
// under the read lock. The node slices are copy-on-write (the slot
// state allocates a fresh slice per membership change), so a returned
// View stays internally consistent even as later deltas apply.
func (s *Service) Snapshot() View {
	s.mu.RLock()
	defer s.mu.RUnlock()
	am, amCounts, amVer := s.slots.AvailMap()
	ar, arCounts, arVer := s.slots.AvailReduce()
	return View{
		AvailMap:    core.Avail{Nodes: am, Counts: amCounts, Version: amVer},
		AvailReduce: core.Avail{Nodes: ar, Counts: arCounts, Version: arVer},
		Epoch:       s.epoch,
	}
}

// SlotKind selects which slot type a slot delta concerns.
type SlotKind int

// Slot kinds.
const (
	MapSlot SlotKind = iota
	ReduceSlot
)

// String names the slot kind.
func (k SlotKind) String() string {
	if k == ReduceSlot {
		return "reduce"
	}
	return "map"
}

// ApplySlotAcquire records that a task occupied a slot of the given
// kind on node n (a placement decision was committed).
func (s *Service) ApplySlotAcquire(k SlotKind, n topology.NodeID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	if k == ReduceSlot {
		err = s.slots.Node(n).AcquireReduce()
	} else {
		err = s.slots.Node(n).AcquireMap()
	}
	if err != nil {
		return err
	}
	s.applied()
	return nil
}

// ApplySlotRelease records that a task freed a slot of the given kind
// on node n (it finished or was killed).
func (s *Service) ApplySlotRelease(k SlotKind, n topology.NodeID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if k == ReduceSlot {
		s.slots.Node(n).ReleaseReduce()
	} else {
		s.slots.Node(n).ReleaseMap()
	}
	s.applied()
}

// ApplyReplicaAdd records a new replica of block id on node n (e.g. a
// re-replication finishing). Reports whether the replica set changed.
func (s *Service) ApplyReplicaAdd(id hdfs.BlockID, n topology.NodeID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	added := s.store.AddReplica(id, n)
	if added {
		s.applied()
	}
	return added
}

// ApplyReplicaLoss records the loss of block id's replica on node n
// (disk failure, decommission). Reports whether a replica was removed.
func (s *Service) ApplyReplicaLoss(id hdfs.BlockID, n topology.NodeID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	removed := s.store.RemoveReplica(id, n)
	if removed {
		s.applied()
	}
	return removed
}

// ApplyNodeReplicaLoss drops every replica hosted on node n (the node
// died with its disks). Returns the number of replicas removed.
func (s *Service) ApplyNodeReplicaLoss(n topology.NodeID) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	removed := s.store.RemoveNodeReplicas(n)
	s.applied()
	return removed
}

// ApplyNodeOffline marks node n dead (true) or revived (false): an
// offline node offers no slots and drops out of the Avail sets.
func (s *Service) ApplyNodeOffline(n topology.NodeID, off bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.slots.Node(n).SetOffline(off)
	s.applied()
}

// ApplyNodeBlacklist marks node n blacklisted (no new tasks, running
// ones keep their slots) or clears the mark.
func (s *Service) ApplyNodeBlacklist(n topology.NodeID, b bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.slots.Node(n).SetBlacklisted(b)
	s.applied()
}

// Update runs fn under the write lock and counts it as one applied
// delta: use it for mutations of client-owned state that decisions
// read — task states, job membership — so they stay inside the
// writer/reader contract. fn may touch the state behind Slots() and
// Store() directly but must not call other Service methods (they take
// the same lock). The availability snapshots are rematerialized after
// fn returns.
func (s *Service) Update(fn func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fn()
	s.applied()
}

// ApplyLinkFactor rescales node n's host access link capacity by
// factor (1 restores nominal). Only supported when the network exposes
// runtime link scaling; network-condition costs then see the change
// through the rate observer.
func (s *Service) ApplyLinkFactor(n topology.NodeID, factor float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	ls, ok := s.net.(linkScaler)
	if !ok {
		return fmt.Errorf("placement: network %T does not support link rescaling", s.net)
	}
	ls.SetHostLinkFactor(n, factor)
	s.applied()
	return nil
}
