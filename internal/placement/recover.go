// Recovery: rebuild a crashed Service from its checkpoint and delta
// journal. The recovered service's epoch, availability snapshots and
// subsequent decision stream are bit-identical to the uninterrupted
// run — proven by the kill/restart chaos harness (chaos.go) and the
// recover tests.
package placement

import (
	"errors"
	"fmt"
	"io"

	"mapsched/internal/hdfs"
	"mapsched/internal/topology"
)

// Note is one client annotation surfaced by recovery: the client-owned
// half of a journaled delta (a task commit, a completion), which the
// service cannot re-apply itself. Clients replay notes in order to
// rebuild their own state next to the recovered service state.
type Note struct {
	// Seq is the epoch the annotated delta applied at.
	Seq uint64
	// Op is the delta kind the note rode on.
	Op Op
	// Kind and Node identify the slot for acquire/release notes.
	Kind string
	Node int
	// Note is the client's opaque annotation.
	Note string
}

// Recovery is the result of rebuilding a Service from durable state.
type Recovery struct {
	// Service is the recovered service, epoch-identical to the crashed
	// one at its last journaled delta. No journal is attached; call
	// StartJournal to resume journaling (typically appending to the same
	// file — the fresh begin marker logically truncates any damaged
	// tail).
	Service *Service
	// Epoch is the recovered delta epoch.
	Epoch uint64
	// CheckpointEpoch is the epoch the checkpoint captured (0 without
	// one).
	CheckpointEpoch uint64
	// Applied and Skipped count journal records re-applied and records
	// at or below the checkpoint epoch (already inside the checkpoint).
	Applied, Skipped int
	// Notes are the client annotations of every valid journal record in
	// order — including records the checkpoint already covers: the
	// checkpoint restores only service state, so clients replay the full
	// note stream (or persist their own state separately) to rebuild
	// theirs.
	Notes []Note
	// Tail is nil when the journal decoded cleanly; otherwise it wraps
	// ErrTruncatedTail or ErrCorruptRecord and the service state is
	// recovered up to the last valid record before the damage.
	Tail error
	// JournalValidBytes is the byte length of the journal's valid line
	// prefix. Before appending to the same journal file, truncate it to
	// this length so damaged bytes do not survive mid-stream.
	JournalValidBytes int64
}

// Recover rebuilds a Service from a checkpoint and/or a delta journal
// over fresh base deps. The deps must be in the same seed state the
// crashed service started from (same topology, same initial block
// placement, same slot capacities): the checkpoint restores the
// scheduler-visible state at its epoch, then the journal records past
// that epoch re-apply one by one. Either input may be nil: a nil
// checkpoint replays the journal from epoch 0; a nil journal restores
// the checkpoint alone.
//
// Journal damage never fails recovery — the state recovers to the last
// valid record and the typed verdict lands in Recovery.Tail. A damaged
// or contradictory checkpoint does fail (ErrBadCheckpoint): checkpoints
// restore as a whole or not at all. A journal whose first record lies
// beyond checkpointEpoch+1 fails too — deltas would be missing.
func Recover(d Deps, checkpoint, journal io.Reader) (*Recovery, error) {
	svc, err := NewService(d)
	if err != nil {
		return nil, err
	}
	rec := &Recovery{Service: svc}

	if checkpoint != nil {
		cp, err := DecodeCheckpoint(checkpoint)
		if err != nil {
			return nil, err
		}
		if err := svc.restoreCheckpoint(cp); err != nil {
			return nil, err
		}
		rec.CheckpointEpoch = cp.Epoch
	}
	rec.Epoch = svc.Epoch()

	if journal != nil {
		dec, err := DecodeJournal(journal)
		if err != nil {
			return nil, err
		}
		rec.Tail = dec.Err
		rec.JournalValidBytes = dec.ValidBytes
		for i := range dec.Records {
			r := &dec.Records[i]
			if r.Note != "" {
				rec.Notes = append(rec.Notes, Note{Seq: r.Seq, Op: r.Op, Kind: r.Kind, Node: r.Node, Note: r.Note})
			}
			if r.Seq <= rec.CheckpointEpoch {
				rec.Skipped++
				continue
			}
			if r.Seq != svc.Epoch()+1 {
				return nil, fmt.Errorf("%w: journal resumes at seq %d, state at epoch %d",
					ErrBadCheckpoint, r.Seq, svc.Epoch())
			}
			if err := svc.applyRecord(r); err != nil {
				return nil, fmt.Errorf("%w: seq %d (%s): %v", ErrCorruptRecord, r.Seq, r.Op, err)
			}
			rec.Applied++
		}
		rec.Epoch = svc.Epoch()
	}
	return rec, nil
}

// restoreCheckpoint installs a decoded checkpoint's state onto a
// freshly built service. All-or-nothing: any contradiction with the
// base deps returns ErrBadCheckpoint (the service must then be
// discarded — it may be partially restored).
func (s *Service) restoreCheckpoint(cp *Checkpoint) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cp.Nodes != s.slots.Size() {
		return fmt.Errorf("%w: checkpoint has %d nodes, cluster %d", ErrBadCheckpoint, cp.Nodes, s.slots.Size())
	}
	for i := 0; i < cp.Nodes; i++ {
		n := s.slots.Node(topology.NodeID(i))
		if cp.UsedMap[i] < 0 || cp.UsedReduce[i] < 0 {
			return fmt.Errorf("%w: negative slot usage on node %d", ErrBadCheckpoint, i)
		}
		for j := 0; j < cp.UsedMap[i]; j++ {
			if err := n.AcquireMap(); err != nil {
				return fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
			}
		}
		for j := 0; j < cp.UsedReduce[i]; j++ {
			if err := n.AcquireReduce(); err != nil {
				return fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
			}
		}
	}
	for _, i := range cp.Offline {
		if i < 0 || i >= cp.Nodes {
			return fmt.Errorf("%w: offline node %d out of range", ErrBadCheckpoint, i)
		}
		s.slots.Node(topology.NodeID(i)).SetOffline(true)
	}
	for _, i := range cp.Blacklist {
		if i < 0 || i >= cp.Nodes {
			return fmt.Errorf("%w: blacklisted node %d out of range", ErrBadCheckpoint, i)
		}
		s.slots.Node(topology.NodeID(i)).SetBlacklisted(true)
	}
	if len(cp.Links) > 0 {
		ls, ok := s.net.(linkScaler)
		if !ok {
			return fmt.Errorf("%w: checkpoint rescales links but network %T cannot", ErrBadCheckpoint, s.net)
		}
		s.linkFactors = make([]float64, s.slots.Size())
		for i := range s.linkFactors {
			s.linkFactors[i] = 1
		}
		for _, l := range cp.Links {
			if l.Node < 0 || l.Node >= cp.Nodes {
				return fmt.Errorf("%w: link node %d out of range", ErrBadCheckpoint, l.Node)
			}
			ls.SetHostLinkFactor(topology.NodeID(l.Node), l.Factor)
			s.linkFactors[l.Node] = l.Factor
		}
	}
	// The base store may hold more blocks than the checkpoint captured:
	// the client recreates later blocks itself while replaying its own
	// event prefix, and every post-checkpoint replica delta is in the
	// journal. More checkpointed blocks than the store holds is a
	// contradiction.
	if len(cp.Replicas) > s.store.NumBlocks() {
		return fmt.Errorf("%w: checkpoint has %d blocks, store %d", ErrBadCheckpoint, len(cp.Replicas), s.store.NumBlocks())
	}
	nodes := make([]topology.NodeID, 0, 8)
	for b, row := range cp.Replicas {
		nodes = nodes[:0]
		for _, n := range row {
			nodes = append(nodes, topology.NodeID(n))
		}
		if err := s.store.SetReplicas(hdfs.BlockID(b), nodes); err != nil {
			return fmt.Errorf("%w: block %d: %v", ErrBadCheckpoint, b, err)
		}
	}
	s.epoch = cp.Epoch
	s.refreshLocked()
	return nil
}

// applyRecord re-applies one journal record through the public delta
// methods (no journal is attached during recovery, so nothing is
// re-recorded). Each record bumps the epoch by exactly one, keeping the
// epoch aligned with the record seqs. OpBegin never reaches here: the
// decoder consumes begin markers while chaining seqs.
//
//lint:journal-exhaustive Op except OpBegin
func (s *Service) applyRecord(r *Record) error {
	n := topology.NodeID(r.Node)
	switch r.Op {
	case OpAcquire:
		return s.ApplySlotAcquire(r.slotKind(), n)
	case OpRelease:
		return s.ApplySlotRelease(r.slotKind(), n)
	case OpReplicaAdd:
		added, err := s.ApplyReplicaAdd(hdfs.BlockID(r.Block), n)
		if err == nil && !added {
			// The record was only written for an actual addition, so a
			// no-op replay means the state diverged from the journal.
			err = errors.New("replica already present")
		}
		return err
	case OpReplicaLoss:
		removed, err := s.ApplyReplicaLoss(hdfs.BlockID(r.Block), n)
		if err == nil && !removed {
			err = errors.New("replica already absent")
		}
		return err
	case OpNodeReplicaLoss:
		_, err := s.ApplyNodeReplicaLoss(n)
		return err
	case OpOffline:
		return s.ApplyNodeOffline(n, r.On)
	case OpBlacklist:
		return s.ApplyNodeBlacklist(n, r.On)
	case OpLinkFactor:
		return s.ApplyLinkFactor(n, r.F)
	case OpUpdate:
		// The client's half of the mutation is replayed from the
		// surfaced note; the service's half is the epoch bump.
		s.Update(func() {})
		return nil
	}
	return fmt.Errorf("unknown op %q", r.Op)
}
