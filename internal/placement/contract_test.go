package placement

import (
	"errors"
	"testing"

	"mapsched/internal/topology"
)

// TestDeltaContract is the defensive delta contract, table-driven: every
// rejected delta returns its specific typed error, matches the
// ErrDeltaConflict family via errors.Is, and leaves the epoch, the
// availability snapshots and the per-class counts exactly as they were.
func TestDeltaContract(t *testing.T) {
	cases := []struct {
		name string
		prep func(t *testing.T, f *fixture) // establish the conflicting state
		hit  func(f *fixture) error         // the delta that must be rejected
		want error
	}{
		{
			name: "double_acquire_exhausts_slots",
			prep: func(t *testing.T, f *fixture) {
				for i := 0; i < 2; i++ { // fixture has 2 reduce slots per node
					if err := f.svc.ApplySlotAcquire(ReduceSlot, 3); err != nil {
						t.Fatal(err)
					}
				}
			},
			hit:  func(f *fixture) error { return f.svc.ApplySlotAcquire(ReduceSlot, 3) },
			want: ErrNoFreeSlot,
		},
		{
			name: "release_before_acquire",
			hit:  func(f *fixture) error { return f.svc.ApplySlotRelease(MapSlot, 2) },
			want: ErrSlotNotHeld,
		},
		{
			name: "acquire_after_offline",
			prep: func(t *testing.T, f *fixture) {
				if err := f.svc.ApplyNodeOffline(4, true); err != nil {
					t.Fatal(err)
				}
			},
			hit:  func(f *fixture) error { return f.svc.ApplySlotAcquire(MapSlot, 4) },
			want: ErrNodeUnavailable,
		},
		{
			name: "acquire_after_blacklist",
			prep: func(t *testing.T, f *fixture) {
				if err := f.svc.ApplyNodeBlacklist(4, true); err != nil {
					t.Fatal(err)
				}
			},
			hit:  func(f *fixture) error { return f.svc.ApplySlotAcquire(ReduceSlot, 4) },
			want: ErrNodeUnavailable,
		},
		{
			name: "acquire_unknown_node",
			hit:  func(f *fixture) error { return f.svc.ApplySlotAcquire(MapSlot, 99) },
			want: ErrUnknownNode,
		},
		{
			name: "release_negative_node",
			hit:  func(f *fixture) error { return f.svc.ApplySlotRelease(MapSlot, -1) },
			want: ErrUnknownNode,
		},
		{
			name: "offline_unknown_node",
			hit:  func(f *fixture) error { return f.svc.ApplyNodeOffline(8, true) },
			want: ErrUnknownNode,
		},
		{
			name: "blacklist_unknown_node",
			hit:  func(f *fixture) error { return f.svc.ApplyNodeBlacklist(-2, true) },
			want: ErrUnknownNode,
		},
		{
			name: "replica_add_unknown_block",
			hit: func(f *fixture) error {
				_, err := f.svc.ApplyReplicaAdd(12345, 0)
				return err
			},
			want: ErrUnknownBlock,
		},
		{
			name: "replica_add_unknown_node",
			hit: func(f *fixture) error {
				_, err := f.svc.ApplyReplicaAdd(0, 42)
				return err
			},
			want: ErrUnknownNode,
		},
		{
			name: "replica_loss_unknown_block",
			hit: func(f *fixture) error {
				_, err := f.svc.ApplyReplicaLoss(-1, 0)
				return err
			},
			want: ErrUnknownBlock,
		},
		{
			name: "node_replica_loss_unknown_node",
			hit: func(f *fixture) error {
				_, err := f.svc.ApplyNodeReplicaLoss(8)
				return err
			},
			want: ErrUnknownNode,
		},
		{
			name: "link_factor_unknown_node",
			hit:  func(f *fixture) error { return f.svc.ApplyLinkFactor(77, 0.5) },
			want: ErrUnknownNode,
		},
		{
			name: "link_factor_nan",
			hit: func(f *fixture) error {
				var nan float64
				nan /= nan // NaN without importing math
				return f.svc.ApplyLinkFactor(3, nan)
			},
			want: ErrBadLinkFactor,
		},
		{
			name: "link_factor_negative",
			hit:  func(f *fixture) error { return f.svc.ApplyLinkFactor(3, -0.5) },
			want: ErrBadLinkFactor,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := newFixture(t)
			if _, err := f.store.AddBlock(64e6, 1, placeAt{nodes: []topology.NodeID{0}}); err != nil {
				t.Fatal(err)
			}
			if tc.prep != nil {
				tc.prep(t, f)
			}
			epoch := f.svc.Epoch()
			before := f.svc.Snapshot()

			err := tc.hit(f)
			if !errors.Is(err, tc.want) {
				t.Fatalf("error %v, want %v", err, tc.want)
			}
			if !errors.Is(err, ErrDeltaConflict) {
				t.Fatalf("error %v does not match the ErrDeltaConflict family", err)
			}

			if got := f.svc.Epoch(); got != epoch {
				t.Fatalf("rejected delta moved the epoch %d -> %d", epoch, got)
			}
			after := f.svc.Snapshot()
			assertAvailEqual(t, "map", before.AvailMap.Nodes, after.AvailMap.Nodes,
				before.AvailMap.Counts, after.AvailMap.Counts)
			assertAvailEqual(t, "reduce", before.AvailReduce.Nodes, after.AvailReduce.Nodes,
				before.AvailReduce.Counts, after.AvailReduce.Counts)
			if a := f.svc.Audit(); !a.Clean() {
				t.Fatalf("rejected delta left drift: %s", a)
			}
		})
	}
}

// assertAvailEqual fails the test when an availability snapshot or its
// per-class counts changed across a rejected delta.
func assertAvailEqual(t *testing.T, kind string, nodesBefore, nodesAfter []topology.NodeID, countsBefore, countsAfter []int) {
	t.Helper()
	if len(nodesBefore) != len(nodesAfter) {
		t.Fatalf("%s avail size changed: %d -> %d", kind, len(nodesBefore), len(nodesAfter))
	}
	for i := range nodesBefore {
		if nodesBefore[i] != nodesAfter[i] {
			t.Fatalf("%s avail membership changed at %d: %d -> %d", kind, i, nodesBefore[i], nodesAfter[i])
		}
	}
	if len(countsBefore) != len(countsAfter) {
		t.Fatalf("%s class count length changed: %d -> %d", kind, len(countsBefore), len(countsAfter))
	}
	for c := range countsBefore {
		if countsBefore[c] != countsAfter[c] {
			t.Fatalf("%s class %d count changed: %d -> %d", kind, c, countsBefore[c], countsAfter[c])
		}
	}
}
