package placement

import (
	"fmt"

	"mapsched/internal/cluster"
	"mapsched/internal/core"
	"mapsched/internal/hdfs"
	"mapsched/internal/job"
	"mapsched/internal/obs"
	"mapsched/internal/sim"
	"mapsched/internal/topology"
)

// ReplayConfig reconstructs the cluster a decision stream was recorded
// on: the same topology, slot counts, seed and job specs the simulation
// ran with. Replay rebuilds the block placements and job shapes from the
// seed (the labeled RNG forks make them a pure function of it), then
// feeds the recorded lifecycle events back in as Service deltas.
type ReplayConfig struct {
	Topology           topology.Spec
	MapSlotsPerNode    int
	ReduceSlotsPerNode int
	Seed               int64
	Specs              []job.Spec
	// Sched is the decision configuration of the recorded scheduler
	// (the probabilistic scheduler's placement.Config).
	Sched Config
}

// ReplayReport summarizes a replay: how many recorded map decisions were
// re-derived engine-free and whether any disagreed with the recording.
type ReplayReport struct {
	// Events is the total number of stream events consumed.
	Events int
	// MapDecisions is the number of recorded map decision events
	// (offer / assign / skip with a breakdown) that were re-derived.
	MapDecisions int
	// Deltas is the number of lifecycle events applied as Service deltas.
	Deltas int
	// Mismatches lists recorded decisions the engine-free path
	// disagreed with (empty on a faithful replay).
	Mismatches []string
}

// Ok reports whether every re-derived decision matched the recording.
func (r *ReplayReport) Ok() bool { return len(r.Mismatches) == 0 }

// maxMismatches bounds the report so a systematically wrong replay stays
// readable.
const maxMismatches = 20

// Replay is the decision service's second client — the engine-free path.
// It rebuilds the recorded cluster from the seed, walks the recorded
// event stream feeding task lifecycle events back into a Service as slot
// deltas, and re-derives every recorded map placement decision with a
// gate-free Decider evaluation, checking the chosen task and its
// C / C_avg / P breakdown bit-for-bit against the recording.
//
// Replay is exact for map decisions of hop-mode, fault-free,
// speculation-free probabilistic runs: map costs are a pure function of
// block placement and slot availability, both of which the stream
// reconstructs. Reduce decisions depend on continuously-evolving task
// progress (the A_jf estimates) that heartbeat streams do not record, and
// fault or speculation events mutate slots outside the recorded task
// lifecycle, so those streams are rejected rather than replayed wrong.
func Replay(rc ReplayConfig, events []obs.Event) (*ReplayReport, error) {
	eng := sim.NewEngine()
	topo, err := topology.NewCluster(eng, rc.Topology)
	if err != nil {
		return nil, err
	}
	root := sim.NewRNG(rc.Seed)
	store := hdfs.NewStore(topo, root.Fork("hdfs"))
	slots, err := cluster.New(topo.Size(), rc.MapSlotsPerNode, rc.ReduceSlotsPerNode)
	if err != nil {
		return nil, err
	}
	svc, err := NewService(Deps{Net: topo, Store: store, Rate: topo, Slots: slots, Mode: core.ModeHops})
	if err != nil {
		return nil, err
	}
	rngJobs := root.Fork("jobs")
	dec := NewDecider(svc, rc.Sched, nil, nil)

	byName := make(map[string]*job.Job, len(rc.Specs))
	used := make([]bool, len(rc.Specs))
	var active []*job.Job
	req := &Request{}
	rep := &ReplayReport{Events: len(events)}

	mismatch := func(i int, ev *obs.Event, format string, args ...interface{}) {
		if len(rep.Mismatches) >= maxMismatches {
			return
		}
		head := fmt.Sprintf("event %d (%s %s t=%.3f): ", i, ev.Type, ev.Job, ev.T)
		rep.Mismatches = append(rep.Mismatches, head+fmt.Sprintf(format, args...))
	}

	for i := range events {
		ev := &events[i]
		switch ev.Type {
		case obs.JobSubmit:
			// Instantiate jobs in stream order so the shared jobs RNG
			// stream is consumed exactly as the recording run consumed it;
			// the job ID is the spec's 1-based position, as in the engine.
			idx := -1
			for si, spec := range rc.Specs {
				if !used[si] && spec.Name == ev.Job {
					idx = si
					break
				}
			}
			if idx < 0 {
				return nil, fmt.Errorf("placement: replay: job_submit %q matches no unused spec", ev.Job)
			}
			used[idx] = true
			j, err := job.New(job.ID(idx+1), rc.Specs[idx], store, rngJobs)
			if err != nil {
				return nil, fmt.Errorf("placement: replay: %w", err)
			}
			j.Submitted = sim.Time(ev.T)
			byName[ev.Job] = j
			active = append(active, j)

		case obs.JobFinish:
			for k, j := range active {
				if j.Spec.Name == ev.Job {
					active = append(active[:k], active[k+1:]...)
					break
				}
			}

		case obs.TaskStart:
			j := byName[ev.Job]
			if j == nil || ev.Task == nil {
				return nil, fmt.Errorf("placement: replay: task_start for unknown job %q", ev.Job)
			}
			n := topology.NodeID(ev.Node)
			if ev.Task.Kind == "map" {
				m := j.Maps[ev.Task.Index]
				m.State, m.Node, m.Launch = job.TaskRunning, n, sim.Time(ev.T)
				if err := svc.ApplySlotAcquire(MapSlot, n); err != nil {
					return nil, fmt.Errorf("placement: replay: %w", err)
				}
			} else {
				r := j.Reduces[ev.Task.Index]
				r.State, r.Node, r.Launch = job.TaskRunning, n, sim.Time(ev.T)
				if err := svc.ApplySlotAcquire(ReduceSlot, n); err != nil {
					return nil, fmt.Errorf("placement: replay: %w", err)
				}
			}
			rep.Deltas++

		case obs.TaskFinish:
			j := byName[ev.Job]
			if j == nil || ev.Task == nil {
				return nil, fmt.Errorf("placement: replay: task_finish for unknown job %q", ev.Job)
			}
			n := topology.NodeID(ev.Node)
			if ev.Task.Kind == "map" {
				m := j.Maps[ev.Task.Index]
				m.State, m.Progress, m.Finish = job.TaskDone, 1, sim.Time(ev.T)
				j.DoneMaps++
				svc.ApplySlotRelease(MapSlot, n)
			} else {
				r := j.Reduces[ev.Task.Index]
				r.State, r.Finish = job.TaskDone, sim.Time(ev.T)
				j.DoneReds++
				svc.ApplySlotRelease(ReduceSlot, n)
			}
			rep.Deltas++

		case obs.TaskOffer, obs.TaskAssign, obs.TaskSkip:
			if ev.Task == nil || ev.Task.Kind != "map" || ev.Task.Index < 0 {
				continue // reduce decisions carry unrecorded progress state
			}
			if ev.Decision == nil {
				return nil, fmt.Errorf("placement: replay: event %d: map decision without a breakdown (not a probabilistic recording)", i)
			}
			rep.MapDecisions++
			req.Now = sim.Time(ev.T)
			req.Jobs = active
			v := svc.Snapshot()
			req.AvailMap, req.AvailReduce = v.AvailMap, v.AvailReduce
			req.Slowstart = 0 // map decisions never consult the slowstart gate
			e := dec.EvaluateMap(req, topology.NodeID(ev.Node))

			var want core.Choice
			switch d := ev.Decision; d.Draw {
			case "local":
				if !e.InstantLocal {
					mismatch(i, ev, "recorded instant-local assign, evaluation found none")
					continue
				}
				want = e.Best
			case "local_fallback":
				if e.InstantLocal || !e.HasLocal {
					mismatch(i, ev, "recorded local fallback, evaluation has instant=%v local=%v", e.InstantLocal, e.HasLocal)
					continue
				}
				want = e.Local
			default: // the gate's offer / accept / deterministic / below_pmin / decline
				if e.InstantLocal || !e.HasBest {
					mismatch(i, ev, "recorded gated decision, evaluation has instant=%v best=%v", e.InstantLocal, e.HasBest)
					continue
				}
				want = e.Best
			}
			m := want.MapTask
			if m.Job.Spec.Name != ev.Job || m.Index != ev.Task.Index {
				mismatch(i, ev, "chose %s/%d, recording has %s/%d", m.Job.Spec.Name, m.Index, ev.Job, ev.Task.Index)
				continue
			}
			// The breakdown must agree bit-for-bit. Instant-local and
			// fallback assigns record C=0 / P=1 by construction; gated
			// events carry the candidate's computed cost and probability.
			gotC, gotAvg, gotP := want.Cost, want.AvgCost, want.Prob
			if ev.Decision.Draw == "local" || ev.Decision.Draw == "local_fallback" {
				gotC, gotP = 0, 1
			}
			if gotC != ev.Decision.C || gotAvg != ev.Decision.CAvg || gotP != ev.Decision.P {
				mismatch(i, ev, "breakdown C=%v CAvg=%v P=%v, recording has C=%v CAvg=%v P=%v",
					gotC, gotAvg, gotP, ev.Decision.C, ev.Decision.CAvg, ev.Decision.P)
			}

		case obs.SpecStart, obs.SpecWin, obs.NodeFail, obs.FailureDetected,
			obs.TaskRelaunch, obs.AttemptFail, obs.NodeBlacklist,
			obs.ReplicaLoss, obs.LinkDegrade, obs.NodeSlow, obs.JobFail:
			return nil, fmt.Errorf("placement: replay: event %d: %s streams are not replayable (slots move outside the recorded task lifecycle)", i, ev.Type)

		default:
			// Flow-level events carry no placement state.
		}
	}
	return rep, nil
}
