package placement

import (
	"fmt"

	"mapsched/internal/cluster"
	"mapsched/internal/core"
	"mapsched/internal/hdfs"
	"mapsched/internal/job"
	"mapsched/internal/obs"
	"mapsched/internal/sim"
	"mapsched/internal/topology"
)

// ReplayConfig reconstructs the cluster a decision stream was recorded
// on: the same topology, slot counts, seed and job specs the simulation
// ran with. Replay rebuilds the block placements and job shapes from the
// seed (the labeled RNG forks make them a pure function of it), then
// feeds the recorded lifecycle events back in as Service deltas.
type ReplayConfig struct {
	Topology           topology.Spec
	MapSlotsPerNode    int
	ReduceSlotsPerNode int
	Seed               int64
	Specs              []job.Spec
	// Sched is the decision configuration of the recorded scheduler
	// (the probabilistic scheduler's placement.Config).
	Sched Config
}

// ReplayReport summarizes a replay: how many recorded map decisions were
// re-derived engine-free and whether any disagreed with the recording.
type ReplayReport struct {
	// Events is the total number of stream events consumed.
	Events int
	// MapDecisions is the number of recorded map decision events
	// (offer / assign / skip with a breakdown) that were re-derived.
	MapDecisions int
	// Deltas is the number of lifecycle events applied as Service deltas.
	Deltas int
	// Mismatches lists recorded decisions the engine-free path
	// disagreed with (empty on a faithful replay).
	Mismatches []string
}

// Ok reports whether every re-derived decision matched the recording.
func (r *ReplayReport) Ok() bool { return len(r.Mismatches) == 0 }

// maxMismatches bounds the report so a systematically wrong replay stays
// readable.
const maxMismatches = 20

// replayDeps is the deterministic base state a replay (or a recovery
// inside the chaos harness) builds over: a pure function of the
// ReplayConfig, so two constructions from the same config are
// bit-identical.
type replayDeps struct {
	deps    Deps
	store   *hdfs.Store
	rngJobs *sim.RNG
}

// newReplayDeps rebuilds the recorded cluster from the seed.
func newReplayDeps(rc ReplayConfig) (*replayDeps, error) {
	eng := sim.NewEngine()
	topo, err := topology.NewCluster(eng, rc.Topology)
	if err != nil {
		return nil, err
	}
	root := sim.NewRNG(rc.Seed)
	store := hdfs.NewStore(topo, root.Fork("hdfs"))
	slots, err := cluster.New(topo.Size(), rc.MapSlotsPerNode, rc.ReduceSlotsPerNode)
	if err != nil {
		return nil, err
	}
	return &replayDeps{
		deps:    Deps{Net: topo, Store: store, Rate: topo, Slots: slots, Mode: core.ModeHops},
		store:   store,
		rngJobs: root.Fork("jobs"),
	}, nil
}

// replayer walks a recorded event stream one event at a time, feeding
// lifecycle events back into a Service as slot deltas and re-deriving
// every recorded map decision. The per-event step method (instead of
// one monolithic loop) is what lets the chaos harness kill the service
// between any two events and resume a fresh replayer mid-stream.
type replayer struct {
	rc     ReplayConfig
	events []obs.Event

	svc   *Service
	dec   *Decider
	store *hdfs.Store
	rng   *sim.RNG // the shared jobs RNG stream

	byName map[string]*job.Job
	used   []bool
	active []*job.Job
	req    *Request
	rep    *ReplayReport

	// statesOnly rebuilds only client-owned state (jobs, tasks, blocks)
	// without touching a Service: no deltas, no decisions. The chaos
	// harness uses it to re-derive the client's half of the state for
	// the event prefix a Recover covers — the service half comes from
	// the checkpoint and journal.
	statesOnly bool

	// onDecision, when set, receives the derived breakdown line of every
	// map decision event (keyed by event index) — the chaos harness's
	// convergence probe.
	onDecision func(i int, line string)
}

// newReplayer builds a replayer over fresh deps. With svc == nil the
// replayer starts in statesOnly mode until a service is attached.
func newReplayer(rc ReplayConfig, events []obs.Event, d *replayDeps, svc *Service) *replayer {
	r := &replayer{
		rc:     rc,
		events: events,
		store:  d.store,
		rng:    d.rngJobs,
		byName: make(map[string]*job.Job, len(rc.Specs)),
		used:   make([]bool, len(rc.Specs)),
		req:    &Request{},
		rep:    &ReplayReport{Events: len(events)},
	}
	if svc == nil {
		r.statesOnly = true
	} else {
		r.attach(svc)
	}
	return r
}

// attach leaves statesOnly mode: subsequent steps apply deltas to svc
// and re-derive decisions against it.
func (r *replayer) attach(svc *Service) {
	r.svc = svc
	r.dec = NewDecider(svc, r.rc.Sched, nil, nil)
	r.statesOnly = false
}

// mismatch records one decision disagreement.
func (r *replayer) mismatch(i int, ev *obs.Event, format string, args ...interface{}) {
	if len(r.rep.Mismatches) >= maxMismatches {
		return
	}
	head := fmt.Sprintf("event %d (%s %s t=%.3f): ", i, ev.Type, ev.Job, ev.T)
	r.rep.Mismatches = append(r.rep.Mismatches, head+fmt.Sprintf(format, args...))
}

// step consumes event i: lifecycle events mutate client state (and, off
// statesOnly mode, apply the matching Service delta); decision events
// are re-derived and checked against the recording.
func (r *replayer) step(i int) error {
	ev := &r.events[i]
	switch ev.Type {
	case obs.JobSubmit:
		// Instantiate jobs in stream order so the shared jobs RNG
		// stream is consumed exactly as the recording run consumed it;
		// the job ID is the spec's 1-based position, as in the engine.
		idx := -1
		for si, spec := range r.rc.Specs {
			if !r.used[si] && spec.Name == ev.Job {
				idx = si
				break
			}
		}
		if idx < 0 {
			return fmt.Errorf("placement: replay: job_submit %q matches no unused spec", ev.Job)
		}
		r.used[idx] = true
		j, err := job.New(job.ID(idx+1), r.rc.Specs[idx], r.store, r.rng)
		if err != nil {
			return fmt.Errorf("placement: replay: %w", err)
		}
		j.Submitted = sim.Time(ev.T)
		r.byName[ev.Job] = j
		r.active = append(r.active, j)

	case obs.JobFinish:
		for k, j := range r.active {
			if j.Spec.Name == ev.Job {
				r.active = append(r.active[:k], r.active[k+1:]...)
				break
			}
		}

	case obs.TaskStart:
		j := r.byName[ev.Job]
		if j == nil || ev.Task == nil {
			return fmt.Errorf("placement: replay: task_start for unknown job %q", ev.Job)
		}
		n := topology.NodeID(ev.Node)
		kind := MapSlot
		if ev.Task.Kind == "map" {
			m := j.Maps[ev.Task.Index]
			m.State, m.Node, m.Launch = job.TaskRunning, n, sim.Time(ev.T)
		} else {
			kind = ReduceSlot
			rt := j.Reduces[ev.Task.Index]
			rt.State, rt.Node, rt.Launch = job.TaskRunning, n, sim.Time(ev.T)
		}
		if !r.statesOnly {
			if err := r.svc.ApplySlotAcquire(kind, n); err != nil {
				return fmt.Errorf("placement: replay: %w", err)
			}
			r.rep.Deltas++
		}

	case obs.TaskFinish:
		j := r.byName[ev.Job]
		if j == nil || ev.Task == nil {
			return fmt.Errorf("placement: replay: task_finish for unknown job %q", ev.Job)
		}
		n := topology.NodeID(ev.Node)
		kind := MapSlot
		if ev.Task.Kind == "map" {
			m := j.Maps[ev.Task.Index]
			m.State, m.Progress, m.Finish = job.TaskDone, 1, sim.Time(ev.T)
			j.DoneMaps++
		} else {
			kind = ReduceSlot
			rt := j.Reduces[ev.Task.Index]
			rt.State, rt.Finish = job.TaskDone, sim.Time(ev.T)
			j.DoneReds++
		}
		if !r.statesOnly {
			if err := r.svc.ApplySlotRelease(kind, n); err != nil {
				return fmt.Errorf("placement: replay: %w", err)
			}
			r.rep.Deltas++
		}

	case obs.TaskOffer, obs.TaskAssign, obs.TaskSkip:
		if ev.Task == nil || ev.Task.Kind != "map" || ev.Task.Index < 0 {
			return nil // reduce decisions carry unrecorded progress state
		}
		if ev.Decision == nil {
			return fmt.Errorf("placement: replay: event %d: map decision without a breakdown (not a probabilistic recording)", i)
		}
		if r.statesOnly {
			return nil
		}
		r.rep.MapDecisions++
		r.req.Now = sim.Time(ev.T)
		r.req.Jobs = r.active
		v := r.svc.Snapshot()
		r.req.AvailMap, r.req.AvailReduce = v.AvailMap, v.AvailReduce
		r.req.Slowstart = 0 // map decisions never consult the slowstart gate
		e := r.dec.EvaluateMap(r.req, topology.NodeID(ev.Node))

		var want core.Choice
		switch d := ev.Decision; d.Draw {
		case "local":
			if !e.InstantLocal {
				r.mismatch(i, ev, "recorded instant-local assign, evaluation found none")
				return nil
			}
			want = e.Best
		case "local_fallback":
			if e.InstantLocal || !e.HasLocal {
				r.mismatch(i, ev, "recorded local fallback, evaluation has instant=%v local=%v", e.InstantLocal, e.HasLocal)
				return nil
			}
			want = e.Local
		default: // the gate's offer / accept / deterministic / below_pmin / decline
			if e.InstantLocal || !e.HasBest {
				r.mismatch(i, ev, "recorded gated decision, evaluation has instant=%v best=%v", e.InstantLocal, e.HasBest)
				return nil
			}
			want = e.Best
		}
		m := want.MapTask
		// The breakdown must agree bit-for-bit. Instant-local and
		// fallback assigns record C=0 / P=1 by construction; gated
		// events carry the candidate's computed cost and probability.
		gotC, gotAvg, gotP := want.Cost, want.AvgCost, want.Prob
		if ev.Decision.Draw == "local" || ev.Decision.Draw == "local_fallback" {
			gotC, gotP = 0, 1
		}
		if r.onDecision != nil {
			r.onDecision(i, fmt.Sprintf("%s/%d C=%v CAvg=%v P=%v",
				m.Job.Spec.Name, m.Index, gotC, gotAvg, gotP))
		}
		if m.Job.Spec.Name != ev.Job || m.Index != ev.Task.Index {
			r.mismatch(i, ev, "chose %s/%d, recording has %s/%d", m.Job.Spec.Name, m.Index, ev.Job, ev.Task.Index)
			return nil
		}
		if gotC != ev.Decision.C || gotAvg != ev.Decision.CAvg || gotP != ev.Decision.P {
			r.mismatch(i, ev, "breakdown C=%v CAvg=%v P=%v, recording has C=%v CAvg=%v P=%v",
				gotC, gotAvg, gotP, ev.Decision.C, ev.Decision.CAvg, ev.Decision.P)
		}

	case obs.SpecStart, obs.SpecWin, obs.NodeFail, obs.FailureDetected,
		obs.TaskRelaunch, obs.AttemptFail, obs.NodeBlacklist,
		obs.ReplicaLoss, obs.LinkDegrade, obs.NodeSlow, obs.JobFail:
		return fmt.Errorf("%w: event %d: %s streams move slots outside the recorded task lifecycle", ErrNotReplayable, i, ev.Type)

	default:
		// Flow-level events carry no placement state.
	}
	return nil
}

// Replay is the decision service's second client — the engine-free path.
// It rebuilds the recorded cluster from the seed, walks the recorded
// event stream feeding task lifecycle events back into a Service as slot
// deltas, and re-derives every recorded map placement decision with a
// gate-free Decider evaluation, checking the chosen task and its
// C / C_avg / P breakdown bit-for-bit against the recording.
//
// Replay is exact for map decisions of hop-mode, fault-free,
// speculation-free probabilistic runs: map costs are a pure function of
// block placement and slot availability, both of which the stream
// reconstructs. Reduce decisions depend on continuously-evolving task
// progress (the A_jf estimates) that heartbeat streams do not record, and
// fault or speculation events mutate slots outside the recorded task
// lifecycle, so those streams are rejected (ErrNotReplayable) rather
// than replayed wrong.
func Replay(rc ReplayConfig, events []obs.Event) (*ReplayReport, error) {
	d, err := newReplayDeps(rc)
	if err != nil {
		return nil, err
	}
	svc, err := NewService(d.deps)
	if err != nil {
		return nil, err
	}
	r := newReplayer(rc, events, d, svc)
	for i := range events {
		if err := r.step(i); err != nil {
			return nil, err
		}
	}
	return r.rep, nil
}
