package core_test

import (
	"fmt"

	"mapsched/internal/core"
)

// The probability of Formula 4 at a few cost ratios: data-local
// placements are certain, average-cost placements land at 1-e^{-1}, and
// expensive placements become unlikely.
func ExampleAssignProb() {
	fmt.Printf("local:     %.3f\n", core.AssignProb(100, 0))
	fmt.Printf("average:   %.3f\n", core.AssignProb(100, 100))
	fmt.Printf("expensive: %.3f\n", core.AssignProb(100, 400))
	// Output:
	// local:     1.000
	// average:   0.632
	// expensive: 0.221
}

// CostCeiling converts the P_min threshold back into the largest cost (as
// a multiple of the average) the scheduler will accept — the bound the
// paper derives in Section II-C.
func ExampleCostCeiling() {
	fmt.Printf("Pmin=0.4 accepts costs up to %.2f x average\n", core.CostCeiling(0.4))
	// Output:
	// Pmin=0.4 accepts costs up to 1.96 x average
}
