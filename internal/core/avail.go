package core

import (
	"sort"

	"mapsched/internal/topology"
)

// Avail is a snapshot of one slot kind's availability set (the N_m / N_r
// of Formulas 4–5) together with the optional aggregates that let the
// class-collapsed cost sums run in O(distance classes) instead of
// O(nodes). Avail values are shared with concurrent readers by shallow
// copy — the slices alias the producer's published snapshot — so once
// built they are never written again (the snapshotfree analyzer
// enforces this in every client package).
//
//lint:immutable-after-publish
type Avail struct {
	// Nodes lists the members in ascending NodeID order. Consumers may
	// binary-search it and must not mutate it.
	Nodes []topology.NodeID
	// Counts holds per-class member counts (indexed by topology.Classes
	// class index) maintained incrementally by the cluster state; nil when
	// no class structure is installed — evaluators then derive counts by
	// scanning Nodes.
	Counts []int
	// Version identifies the (Nodes, Counts) content: producers bump it on
	// every membership change, so equal non-zero versions mean equal
	// content and evaluators skip the O(nodes) comparison. 0 means "no
	// identity known" (ad-hoc snapshots in tests) and forces the full
	// comparison.
	Version uint64
}

// NewAvail wraps a plain ascending node list with no counts and no
// identity — the form used by tests and ad-hoc callers.
func NewAvail(nodes []topology.NodeID) Avail { return Avail{Nodes: nodes} }

// containsNode reports whether the ascending list avail contains id.
func containsNode(avail []topology.NodeID, id topology.NodeID) bool {
	k := sort.Search(len(avail), func(i int) bool { return avail[i] >= id })
	return k < len(avail) && avail[k] == id
}
