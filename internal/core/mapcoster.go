package core

import (
	"math"

	"mapsched/internal/hdfs"
	"mapsched/internal/job"
	"mapsched/internal/topology"
)

// MapCoster caches Formula 1 evaluations across scheduling rounds. For
// each input block it precomputes the nearest-replica distance
// min_{l: L_lj=1} h_il for every candidate node, and for the avail-node
// set of the current round it caches the per-block cost sum feeding
// C_avg. A row only goes stale when the distance matrix changes or a
// block loses a replica — both of which the CostModel's DistanceEpoch
// signals exactly (it folds the flow network's rate-recompute epoch
// together with the store's replica-mutation epoch; hop distances never
// change and replica sets only shrink under faults). Every value it
// returns is bit-identical to the uncached CostModel.MapCost / MapCostAvg.
type MapCoster struct {
	cm        *CostModel
	rows      map[hdfs.BlockID]*mapRow
	cacheable bool // distances carry an epoch signal

	avail        []topology.NodeID
	availVersion uint64
}

type mapRow struct {
	dist       []float64 // per candidate node: min over replicas of h
	epoch      uint64    // distance epoch the row was filled at
	sumVersion uint64    // availVersion costSum was computed at (0 = stale)
	costSum    float64   // Σ_{k in avail} B_j·dist[k]
}

// NewMapCoster builds an empty cache over the model. One MapCoster serves
// all jobs; call Forget when a job completes to release its rows.
func (c *CostModel) NewMapCoster() *MapCoster {
	mc := &MapCoster{cm: c, rows: make(map[hdfs.BlockID]*mapRow), availVersion: 1}
	_, mc.cacheable = c.DistanceEpoch()
	return mc
}

// row returns the (refreshed) distance row for the task's block.
func (mc *MapCoster) row(m *job.MapTask) *mapRow {
	ep, _ := mc.cm.DistanceEpoch()
	r := mc.rows[m.Block]
	if r == nil {
		r = &mapRow{dist: make([]float64, mc.cm.net.Size())}
		mc.rows[m.Block] = r
	} else if mc.cacheable && r.epoch == ep {
		return r
	}
	replicas := mc.cm.store.Replicas(m.Block)
	for k := range r.dist {
		best := math.Inf(1)
		for _, l := range replicas {
			if d := mc.cm.Distance(topology.NodeID(k), l); d < best {
				best = d
				if best == 0 {
					break
				}
			}
		}
		r.dist[k] = best
	}
	r.epoch = ep
	r.sumVersion = 0 // distances changed: cached cost sum is stale
	return r
}

// Cost returns C_m(i,j) (Formula 1), bit-identical to CostModel.MapCost.
func (mc *MapCoster) Cost(m *job.MapTask, i topology.NodeID) float64 {
	d := mc.row(m).dist[i]
	if math.IsInf(d, 1) {
		return math.Inf(1) // no replicas: unschedulable
	}
	return m.Size * d
}

// CostAvg returns C_avg over avail, bit-identical to CostModel.MapCostAvg:
// the sum accumulates B_j·dist[k] in avail order, exactly as the naive
// loop does.
func (mc *MapCoster) CostAvg(m *job.MapTask, avail []topology.NodeID) float64 {
	if len(avail) == 0 {
		return 0
	}
	if !equalNodes(mc.avail, avail) {
		mc.avail = append(mc.avail[:0], avail...)
		mc.availVersion++
	}
	r := mc.row(m)
	if !mc.cacheable || r.sumVersion != mc.availVersion {
		var sum float64
		for _, k := range mc.avail {
			sum += m.Size * r.dist[k]
		}
		r.costSum = sum
		r.sumVersion = mc.availVersion
	}
	return r.costSum / float64(len(avail))
}

// Forget drops the cached rows of a job's blocks. Blocks belong to
// exactly one job's input file, so this cannot evict another job's state.
func (mc *MapCoster) Forget(j *job.Job) {
	for _, m := range j.Maps {
		delete(mc.rows, m.Block)
	}
}

// Len returns the number of cached block rows (exposed for leak tests).
func (mc *MapCoster) Len() int { return len(mc.rows) }
