package core

import (
	"math"
	"sort"

	"mapsched/internal/hdfs"
	"mapsched/internal/job"
	"mapsched/internal/topology"
)

// MapCoster caches Formula 1 evaluations across scheduling rounds. For
// each input block it precomputes the nearest-replica distance
// min_{l: L_lj=1} h_il — per candidate node in general, or per distance
// class when the network collapses into classes — and for the avail-node
// set of the current round it caches the per-block cost sum feeding
// C_avg. A row only goes stale when the distance matrix changes or a
// block loses a replica — both of which the CostModel's DistanceEpoch
// signals exactly (it folds the flow network's rate-recompute epoch
// together with the store's replica-mutation epoch; hop distances never
// change and replica sets only shrink under faults). Every value it
// returns is bit-identical to the uncached CostModel.MapCost / MapCostAvg.
type MapCoster struct {
	cm        *CostModel
	rows      map[hdfs.BlockID]*mapRow
	cacheable bool // distances carry an epoch signal

	avail []topology.NodeID
	// seq numbers the distinct avail sets seen (rows memoize their cost
	// sum against it); lastExt is the producer's Avail.Version for the
	// current set, giving an O(1) revalidation instead of the O(nodes)
	// list comparison.
	seq     uint64
	lastExt uint64

	orderBuf []int // scratch for SizeOrder
}

type mapRow struct {
	dist       []float64 // per candidate node: min over replicas of h (unclassed)
	classMinD  []float64 // per distance class: min over replicas of D (classed)
	epoch      uint64    // distance epoch the row was filled at
	sumVersion uint64    // seq costSum was computed at (0 = stale)
	costSum    float64   // Σ_{k in avail} C_m(k, j), before the /N_m division
}

// NewMapCoster builds an empty cache over the model. One MapCoster serves
// all jobs; call Forget when a job completes to release its rows.
func (c *CostModel) NewMapCoster() *MapCoster {
	mc := &MapCoster{cm: c, rows: make(map[hdfs.BlockID]*mapRow), seq: 1}
	_, mc.cacheable = c.DistanceEpoch()
	return mc
}

// row returns the (refreshed) distance row for the task's block.
func (mc *MapCoster) row(m *job.MapTask) *mapRow {
	ep, _ := mc.cm.DistanceEpoch()
	cl := mc.cm.classes
	r := mc.rows[m.Block]
	if r == nil {
		r = &mapRow{}
		if cl != nil {
			r.classMinD = make([]float64, cl.Num())
		} else {
			r.dist = make([]float64, mc.cm.net.Size())
		}
		mc.rows[m.Block] = r
	} else if mc.cacheable && r.epoch == ep {
		return r
	}
	replicas := mc.cm.store.Replicas(m.Block)
	if cl != nil {
		mc.cm.classMinD(replicas, r.classMinD)
	} else {
		for k := range r.dist {
			best := math.Inf(1)
			for _, l := range replicas {
				if d := mc.cm.Distance(topology.NodeID(k), l); d < best {
					best = d
					if best == 0 {
						break
					}
				}
			}
			r.dist[k] = best
		}
	}
	r.epoch = ep
	r.sumVersion = 0 // distances changed: cached cost sum is stale
	return r
}

// Cost returns C_m(i,j) (Formula 1), bit-identical to CostModel.MapCost.
// On a classed network the nearest-replica distance depends only on i's
// class — except on a replica node itself, where it is 0.
func (mc *MapCoster) Cost(m *job.MapTask, i topology.NodeID) float64 {
	r := mc.row(m)
	if cl := mc.cm.classes; cl != nil {
		if mc.cm.store.HasReplica(m.Block, i) {
			return 0 // m.Size · h_ii = 0
		}
		d := r.classMinD[cl.Of(i)]
		if math.IsInf(d, 1) {
			return math.Inf(1) // no replicas: unschedulable
		}
		return m.Size * d
	}
	d := r.dist[i]
	if math.IsInf(d, 1) {
		return math.Inf(1) // no replicas: unschedulable
	}
	return m.Size * d
}

// syncAvail adopts the offered avail snapshot: a matching non-zero
// version is an O(1) hit, an equal node list re-arms the version, and
// anything else starts a new seq era (invalidating the per-row sums).
func (mc *MapCoster) syncAvail(a Avail) {
	if a.Version != 0 && a.Version == mc.lastExt {
		return
	}
	if equalNodes(mc.avail, a.Nodes) {
		mc.lastExt = a.Version
		return
	}
	mc.avail = append(mc.avail[:0], a.Nodes...)
	mc.lastExt = a.Version
	mc.seq++
}

// CostAvg returns C_avg over the avail set, bit-identical to
// CostModel.MapCostAvg: on a classed network both funnel through
// CostModel.classMapSum, otherwise the sum accumulates B_j·dist[k] in
// avail order exactly as the naive loop does.
func (mc *MapCoster) CostAvg(m *job.MapTask, a Avail) float64 {
	if len(a.Nodes) == 0 {
		return 0
	}
	mc.syncAvail(a)
	r := mc.row(m)
	if !mc.cacheable || r.sumVersion != mc.seq {
		if mc.cm.classes != nil {
			counts := a.Counts
			if counts == nil {
				counts = mc.cm.scanClassCounts(mc.avail)
			}
			replicas := mc.cm.store.Replicas(m.Block)
			r.costSum = m.Size * mc.cm.classMapSum(replicas, mc.avail, counts, r.classMinD)
		} else {
			var sum float64
			for _, k := range mc.avail {
				sum += m.Size * r.dist[k]
			}
			r.costSum = sum
		}
		r.sumVersion = mc.seq
	}
	return r.costSum / float64(len(a.Nodes))
}

// Prunable implements SelectOptimizer: saving bounds exist only when the
// network collapses into distance classes (then MaxDist caps any
// per-node distance).
func (mc *MapCoster) Prunable() bool { return mc.cm.classes != nil }

// SavingBound implements SelectOptimizer: C_avg ≤ B_j·MaxDist (the class
// sum weights at most N_m nodes at distance ≤ MaxDist) and the saving
// C_avg − C never exceeds C_avg, so no placement of m can save more.
func (mc *MapCoster) SavingBound(m *job.MapTask) float64 {
	return m.Size * mc.cm.classes.MaxDist()
}

// ZeroCost implements SelectOptimizer: whether C_m(i, j) is exactly 0 —
// node i holds a replica, or the task reads zero bytes (a no-replica
// block stays +Inf even at size 0).
func (mc *MapCoster) ZeroCost(m *job.MapTask, i topology.NodeID) bool {
	if m.Size == 0 {
		return len(mc.cm.store.Replicas(m.Block)) > 0
	}
	return mc.cm.store.HasReplica(m.Block, i)
}

// SizeOrder implements SelectOptimizer: candidate indices by descending
// task size, original position breaking ties. Since SavingBound is
// monotone in size, a scan in this order can stop at the first bound
// below the incumbent saving.
func (mc *MapCoster) SizeOrder(tasks []*job.MapTask) []int {
	idx := mc.orderBuf[:0]
	for k := range tasks {
		idx = append(idx, k)
	}
	sort.Slice(idx, func(a, b int) bool {
		if tasks[idx[a]].Size != tasks[idx[b]].Size {
			return tasks[idx[a]].Size > tasks[idx[b]].Size
		}
		return idx[a] < idx[b]
	})
	mc.orderBuf = idx
	return idx
}

// Forget drops the cached rows of a job's blocks. Blocks belong to
// exactly one job's input file, so this cannot evict another job's state.
func (mc *MapCoster) Forget(j *job.Job) {
	for _, m := range j.Maps {
		delete(mc.rows, m.Block)
	}
}

// Len returns the number of cached block rows (exposed for leak tests).
func (mc *MapCoster) Len() int { return len(mc.rows) }
