package core

import (
	"math"
	"testing"
	"testing/quick"

	"mapsched/internal/hdfs"
	"mapsched/internal/job"
	"mapsched/internal/sim"
	"mapsched/internal/topology"
)

// fig2H is the distance matrix of the paper's Fig. 2 worked example.
var fig2H = [][]float64{
	{0, 10, 2, 6},
	{10, 0, 10, 4},
	{2, 10, 0, 6},
	{6, 4, 6, 0},
}

type fixedPolicy struct{ nodes []topology.NodeID }

func (p fixedPolicy) Name() string { return "fixed" }
func (p fixedPolicy) Place(topology.Network, *sim.RNG, int) []topology.NodeID {
	return p.nodes
}

// fig2Setup builds the Fig. 2 scenario: 4 nodes, M1's block on D1 (node 0),
// M2's block on D2 (node 1), both 128 MB, 2 reduce partitions with
// I = [[10,5],[20,10]] MB.
func fig2Setup(t *testing.T) (*CostModel, *job.Job) {
	t.Helper()
	eng := sim.NewEngine()
	net, err := topology.NewMatrix(eng, fig2H, nil, 100e6, 400e6)
	if err != nil {
		t.Fatal(err)
	}
	store := hdfs.NewStore(net, sim.NewRNG(1))
	prof := job.Profile{
		Name: "fig2", MapSelectivity: 1, MapRate: 1e6, ReduceRate: 1e6,
	}
	// Two blocks at fixed locations: rebuild the job by hand so the
	// intermediate matrix matches the paper exactly.
	b1, err := store.AddBlock(128, 1, fixedPolicy{nodes: []topology.NodeID{0}})
	if err != nil {
		t.Fatal(err)
	}
	b2, err := store.AddBlock(128, 1, fixedPolicy{nodes: []topology.NodeID{1}})
	if err != nil {
		t.Fatal(err)
	}
	j := &job.Job{ID: 1, Spec: job.Spec{Name: "fig2", Profile: prof}}
	j.Maps = []*job.MapTask{
		{Job: j, Index: 0, Block: b1, Size: 128, Out: []float64{10, 5}, OutputCurve: 1, Node: -1},
		{Job: j, Index: 1, Block: b2, Size: 128, Out: []float64{20, 10}, OutputCurve: 1, Node: -1},
	}
	j.Reduces = []*job.ReduceTask{
		{Job: j, Index: 0, Node: -1},
		{Job: j, Index: 1, Node: -1},
	}
	cm, err := NewCostModel(net, store, nil, ModeHops)
	if err != nil {
		t.Fatal(err)
	}
	return cm, j
}

func TestFig2MapCosts(t *testing.T) {
	cm, j := fig2Setup(t)
	// "The transmission cost for M1 [on D3] is 128 × 2 = 256 and the cost
	// for M2 [on D2] is 128 × 0 = 0."
	if got := cm.MapCost(j.Maps[0], 2); got != 256 {
		t.Fatalf("C_m(D3, M1) = %v, want 256", got)
	}
	if got := cm.MapCost(j.Maps[1], 1); got != 0 {
		t.Fatalf("C_m(D2, M2) = %v, want 0", got)
	}
	// All placements of M1 (block on D1): D1=0, D2=128*10, D3=128*2, D4=128*6.
	want := []float64{0, 1280, 256, 768}
	for i, w := range want {
		if got := cm.MapCost(j.Maps[0], topology.NodeID(i)); got != w {
			t.Fatalf("C_m(D%d, M1) = %v, want %v", i+1, got, w)
		}
	}
}

func TestFig2ReduceCosts(t *testing.T) {
	cm, j := fig2Setup(t)
	// Fix the map placement of the example: M1 on D3 (node 2), M2 on D2
	// (node 1), both finished.
	j.Maps[0].State = job.TaskDone
	j.Maps[0].Node = 2
	j.Maps[1].State = job.TaskDone
	j.Maps[1].Node = 1
	rc := cm.NewReduceCoster(j, Oracle{})

	// Formula 2 by hand with the paper's H and I (the figure's own
	// mapper→reducer distance matrix contains a typo — it lists
	// M2→R1 = 4 although h(D2, D1) = 10 in H — so we validate against the
	// formula, not the figure):
	// C_r(D1, R1) = h(D3,D1)·I11 + h(D2,D1)·I21 = 2·10 + 10·20 = 220.
	if got := rc.Cost(0, 0); got != 220 {
		t.Fatalf("C_r(D1, R1) = %v, want 220", got)
	}
	// C_r(D3, R2) = h(D3,D3)·I12 + h(D2,D3)·I22 = 0·5 + 10·10 = 100.
	if got := rc.Cost(2, 1); got != 100 {
		t.Fatalf("C_r(D3, R2) = %v, want 100", got)
	}
	// A placement on the map's own node only pays the other map's path:
	// C_r(D2, R1) = h(D3,D2)·10 + 0·20 = 100.
	if got := rc.Cost(1, 0); got != 100 {
		t.Fatalf("C_r(D2, R1) = %v, want 100", got)
	}
}

func TestReduceCosterIgnoresPendingMaps(t *testing.T) {
	cm, j := fig2Setup(t)
	j.Maps[0].State = job.TaskDone
	j.Maps[0].Node = 2
	// Map 1 still pending: contributes nothing to Formula 2's X matrix.
	rc := cm.NewReduceCoster(j, Oracle{})
	if got := rc.Cost(0, 0); got != 2*10 {
		t.Fatalf("cost with one launched map = %v, want 20", got)
	}
	if got := rc.TotalEstimated(0); got != 10 {
		t.Fatalf("TotalEstimated = %v, want 10", got)
	}
}

func TestPaperEstimatorExample(t *testing.T) {
	// Section II-B-2's example: at time t1, M2 (final 10 MB for R1) is 10%
	// done, M1 (final ~5.56 MB) has produced 5 MB at 90% done. The
	// progress-scaled estimator must rank M2's node as the heavier source,
	// while the current-size view ranks M1 higher.
	cm, j := fig2Setup(t)
	m1, m2 := j.Maps[0], j.Maps[1]
	m1.Out = []float64{5.0 / 0.9, 0} // ≈5.56 MB final, 5 MB at 90%
	m2.Out = []float64{10, 0}
	m1.State, m2.State = job.TaskRunning, job.TaskRunning
	m1.Node, m2.Node = 0, 1
	m1.OutputCurve, m2.OutputCurve = 1, 1
	m1.Progress, m2.Progress = 0.9, 0.1

	ps := ProgressScaled{}
	cs := CurrentSize{}
	if est := ps.EstimateOutput(m2, 0); math.Abs(est-10) > 1e-9 {
		t.Fatalf("progress-scaled Î for M2 = %v, want 10", est)
	}
	if est := ps.EstimateOutput(m1, 0); math.Abs(est-5.0/0.9) > 1e-9 {
		t.Fatalf("progress-scaled Î for M1 = %v, want %v", est, 5.0/0.9)
	}
	if cs.EstimateOutput(m1, 0) <= cs.EstimateOutput(m2, 0) {
		t.Fatal("current-size should rank M1 above M2 (the paper's failure case)")
	}
	if ps.EstimateOutput(m1, 0) >= ps.EstimateOutput(m2, 0) {
		t.Fatal("progress-scaled should rank M2 above M1")
	}
	_ = cm
}

func TestEstimatorZeroProgress(t *testing.T) {
	_, j := fig2Setup(t)
	m := j.Maps[0]
	m.State = job.TaskRunning
	m.Progress = 0
	for _, est := range []Estimator{ProgressScaled{}, CurrentSize{}} {
		if v := est.EstimateOutput(m, 0); v != 0 {
			t.Fatalf("%s at zero progress = %v, want 0", est.Name(), v)
		}
	}
	if v := (Oracle{}).EstimateOutput(m, 0); v != m.Out[0] {
		t.Fatalf("oracle = %v, want ground truth %v", v, m.Out[0])
	}
}

func TestEstimatorExactOnDoneMaps(t *testing.T) {
	_, j := fig2Setup(t)
	m := j.Maps[1]
	m.State = job.TaskDone
	for _, est := range []Estimator{ProgressScaled{}, CurrentSize{}, Oracle{}} {
		if v := est.EstimateOutput(m, 1); v != m.Out[1] {
			t.Fatalf("%s on done map = %v, want %v", est.Name(), v, m.Out[1])
		}
	}
}

func TestEstimatorConvergesWithCurvedOutput(t *testing.T) {
	_, j := fig2Setup(t)
	m := j.Maps[0]
	m.State = job.TaskRunning
	m.OutputCurve = 1.3 // output lags input
	prevErr := math.Inf(1)
	ps := ProgressScaled{}
	for _, p := range []float64{0.2, 0.5, 0.8, 0.99} {
		m.Progress = p
		err := math.Abs(ps.EstimateOutput(m, 0) - m.Out[0])
		if err > prevErr+1e-12 {
			t.Fatalf("estimator error grew from %v to %v at progress %v", prevErr, err, p)
		}
		prevErr = err
	}
}

func TestAssignProbFormula(t *testing.T) {
	// P = 1 - e^{-avg/cost}.
	cases := []struct {
		avg, cost, want float64
	}{
		{100, 100, 1 - math.Exp(-1)},
		{200, 100, 1 - math.Exp(-2)},
		{50, 100, 1 - math.Exp(-0.5)},
		{0, 100, 0}, // everything else is better
		{100, 0, 1}, // local data
		{0, 0, 1},   // all free placements equal
		{100, math.Inf(1), 0},
	}
	for _, c := range cases {
		if got := AssignProb(c.avg, c.cost); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("AssignProb(%v, %v) = %v, want %v", c.avg, c.cost, got, c.want)
		}
	}
}

func TestAssignProbProperties(t *testing.T) {
	// Property: P ∈ [0,1]; monotone increasing in avg, decreasing in cost.
	f := func(a, c uint32) bool {
		avg := float64(a%10000) + 0.5
		cost := float64(c%10000) + 0.5
		p := AssignProb(avg, cost)
		if p < 0 || p > 1 {
			return false
		}
		if AssignProb(avg*2, cost) < p {
			return false
		}
		if AssignProb(avg, cost*2) > p {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCostCeiling(t *testing.T) {
	// From P >= Pmin: C <= C_avg / (-ln(1-Pmin)). At the ceiling the
	// probability equals Pmin exactly.
	for _, pmin := range []float64{0.1, 0.4, 0.63, 0.9} {
		ceil := CostCeiling(pmin)
		avg := 123.0
		p := AssignProb(avg, avg*ceil)
		if math.Abs(p-pmin) > 1e-9 {
			t.Errorf("AssignProb at ceiling(%v) = %v, want %v", pmin, p, pmin)
		}
	}
	if !math.IsInf(CostCeiling(0), 1) || !math.IsInf(CostCeiling(1), 1) {
		t.Error("degenerate pmin should have no ceiling")
	}
}

func TestSelectMapTaskPrefersLocal(t *testing.T) {
	cm, j := fig2Setup(t)
	avail := []topology.NodeID{0, 1, 2, 3}
	// On D1 (node 0): M1's block is local (P = 1), M2's is 10 hops away.
	sel, ok := SelectMapTask(cm, nil, j.Maps, 0, NewAvail(avail))
	if !ok {
		t.Fatal("no candidate selected")
	}
	if sel.Best.MapTask != j.Maps[0] {
		t.Fatalf("selected M%d, want M1 (local data)", sel.Best.MapTask.Index+1)
	}
	if sel.Best.Prob != 1 || sel.Best.Cost != 0 {
		t.Fatalf("local selection P=%v C=%v, want P=1 C=0", sel.Best.Prob, sel.Best.Cost)
	}
	if !sel.HasLocal() || sel.Local.MapTask != j.Maps[0] {
		t.Fatalf("local candidate not tracked: %+v", sel.Local)
	}
	// On D4 (node 3): neither block local; M2 (10 hops from D1... D2→D4 is
	// 4) is nearer than M1 (D1→D4 is 6): M2 wins.
	sel, ok = SelectMapTask(cm, nil, j.Maps, 3, NewAvail(avail))
	if !ok {
		t.Fatal("no candidate selected on D4")
	}
	if sel.Best.MapTask != j.Maps[1] {
		t.Fatalf("selected M%d on D4, want M2", sel.Best.MapTask.Index+1)
	}
	if sel.Best.Prob <= 0 || sel.Best.Prob >= 1 {
		t.Fatalf("remote selection P=%v, want in (0,1)", sel.Best.Prob)
	}
	if sel.HasLocal() {
		t.Fatalf("no data-local candidate exists on D4, got %+v", sel.Local)
	}
}

func TestSelectMapTaskEmpty(t *testing.T) {
	cm, _ := fig2Setup(t)
	if _, ok := SelectMapTask(cm, nil, nil, 0, NewAvail([]topology.NodeID{0})); ok {
		t.Fatal("selection from empty candidate list succeeded")
	}
}

func TestSelectReduceTask(t *testing.T) {
	cm, j := fig2Setup(t)
	j.Maps[0].State = job.TaskDone
	j.Maps[0].Node = 2
	j.Maps[1].State = job.TaskDone
	j.Maps[1].Node = 1
	rc := cm.NewReduceCoster(j, Oracle{})
	avail := []topology.NodeID{0, 1, 2, 3}
	// On D2 (node 1, where the heavy mapper M2 ran) both reduces are
	// cheap; the selection must return the one with the higher P.
	best, ok := SelectReduceTask(rc, nil, j.Reduces, 1, NewAvail(avail))
	if !ok {
		t.Fatal("no reduce selected")
	}
	other := j.Reduces[1-best.ReduceTask.Index]
	pOther := AssignProb(rc.CostAvg(other.Index, NewAvail(avail)), rc.Cost(1, other.Index))
	if best.Prob < pOther {
		t.Fatalf("selected P=%v but other candidate has P=%v", best.Prob, pOther)
	}
}

func TestSelectReduceBeforeAnyMapLaunched(t *testing.T) {
	cm, j := fig2Setup(t)
	rc := cm.NewReduceCoster(j, ProgressScaled{})
	best, ok := SelectReduceTask(rc, nil, j.Reduces, 0, NewAvail([]topology.NodeID{0, 1}))
	if !ok {
		t.Fatal("no reduce selected with zero information")
	}
	// With no launched maps every cost is 0 → P = 1 (assign freely).
	if best.Prob != 1 {
		t.Fatalf("zero-information P = %v, want 1", best.Prob)
	}
}

func TestCentrality(t *testing.T) {
	cm, j := fig2Setup(t)
	j.Maps[0].State = job.TaskDone
	j.Maps[0].Node = 2 // I_1* = [10, 5] at D3
	j.Maps[1].State = job.TaskDone
	j.Maps[1].Node = 1 // I_2* = [20, 10] at D2
	rc := cm.NewReduceCoster(j, Oracle{})
	// For R1 the candidates' costs: D1: 220, D2: 100, D3: 200, D4: 140.
	got, ok := rc.Centrality(0, []topology.NodeID{0, 1, 2, 3})
	if !ok || got != 1 {
		t.Fatalf("Centrality = (%v,%v), want node 1 (D2)", got, ok)
	}
	if _, ok := rc.Centrality(0, nil); ok {
		t.Fatal("Centrality with no candidates returned ok")
	}
}

func TestLocalityClassification(t *testing.T) {
	eng := sim.NewEngine()
	spec := topology.DefaultSpec()
	spec.Racks = 2
	spec.NodesPerRack = 4 // 0-3 rack0, 4-7 rack1
	net, err := topology.NewCluster(eng, spec)
	if err != nil {
		t.Fatal(err)
	}
	store := hdfs.NewStore(net, sim.NewRNG(1))
	b, err := store.AddBlock(128, 2, fixedPolicy{nodes: []topology.NodeID{1, 5}})
	if err != nil {
		t.Fatal(err)
	}
	m := &job.MapTask{Block: b, Size: 128, Out: []float64{1}}
	cm, err := NewCostModel(net, store, nil, ModeHops)
	if err != nil {
		t.Fatal(err)
	}
	if got := cm.Locality(m, 1); got != job.LocalNode {
		t.Fatalf("on replica node: %v, want local node", got)
	}
	if got := cm.Locality(m, 0); got != job.LocalRack {
		t.Fatalf("same rack as replica: %v, want local rack", got)
	}
	spec3 := topology.DefaultSpec()
	spec3.Racks = 3
	spec3.NodesPerRack = 4
	net3, err := topology.NewCluster(eng, spec3)
	if err != nil {
		t.Fatal(err)
	}
	store3 := hdfs.NewStore(net3, sim.NewRNG(1))
	b3, err := store3.AddBlock(128, 2, fixedPolicy{nodes: []topology.NodeID{0, 4}})
	if err != nil {
		t.Fatal(err)
	}
	m3 := &job.MapTask{Block: b3, Size: 128, Out: []float64{1}}
	cm3, err := NewCostModel(net3, store3, nil, ModeHops)
	if err != nil {
		t.Fatal(err)
	}
	if got := cm3.Locality(m3, 9); got != job.Remote {
		t.Fatalf("third rack: %v, want remote", got)
	}
}

func TestNetworkConditionMode(t *testing.T) {
	eng := sim.NewEngine()
	spec := topology.DefaultSpec()
	spec.Racks = 1
	spec.NodesPerRack = 4
	net, err := topology.NewCluster(eng, spec)
	if err != nil {
		t.Fatal(err)
	}
	store := hdfs.NewStore(net, sim.NewRNG(1))
	cm, err := NewCostModel(net, store, net, ModeNetworkCondition)
	if err != nil {
		t.Fatal(err)
	}
	idle := cm.Distance(0, 1)
	if idle <= 0 {
		t.Fatalf("idle inverse-rate distance = %v, want > 0", idle)
	}
	// Congest node 0's uplink and verify the distance grows.
	net.Transfer(0, 2, 1e12, nil)
	busy := cm.Distance(0, 1)
	if busy <= idle {
		t.Fatalf("congested distance %v not above idle %v", busy, idle)
	}
	// Local distance is small but non-zero (1/diskRate).
	local := cm.Distance(1, 1)
	if local <= 0 || local >= idle {
		t.Fatalf("local distance %v, want in (0, %v)", local, idle)
	}
	// Mode validation.
	if _, err := NewCostModel(net, store, nil, ModeNetworkCondition); err == nil {
		t.Fatal("network-condition mode without observer accepted")
	}
	if ModeHops.String() != "hops" || ModeNetworkCondition.String() != "network-condition" {
		t.Fatal("mode strings wrong")
	}
}

func TestNewCostModelValidation(t *testing.T) {
	if _, err := NewCostModel(nil, nil, nil, ModeHops); err == nil {
		t.Fatal("nil deps accepted")
	}
}

func TestMapCostAvgEmptyAvail(t *testing.T) {
	cm, j := fig2Setup(t)
	if got := cm.MapCostAvg(j.Maps[0], nil); got != 0 {
		t.Fatalf("avg over no nodes = %v, want 0", got)
	}
}

func TestMapCostPropertyMonotoneInSize(t *testing.T) {
	cm, j := fig2Setup(t)
	m := j.Maps[0]
	small := *m
	small.Size = m.Size / 2
	for i := 0; i < 4; i++ {
		n := topology.NodeID(i)
		if cm.MapCost(&small, n) > cm.MapCost(m, n) {
			t.Fatalf("halving block size increased cost on node %d", i)
		}
	}
}

// TestSelectReduceSkipsUnreachablePlacements pins the math.IsInf skip of
// Algorithm 2's scan: after a link sever an unreachable placement's
// −Inf saving must neither become a job's "best" nor mask reachable
// candidates, and a task with no reachable placement at all yields
// ok = false rather than a P = 0 assignment.
func TestSelectReduceSkipsUnreachablePlacements(t *testing.T) {
	eng := sim.NewEngine()
	spec := topology.DefaultSpec()
	spec.Racks = 1
	spec.NodesPerRack = 4
	net, err := topology.NewCluster(eng, spec)
	if err != nil {
		t.Fatal(err)
	}
	store := hdfs.NewStore(net, sim.NewRNG(1))
	b1, err := store.AddBlock(128, 1, fixedPolicy{nodes: []topology.NodeID{1}})
	if err != nil {
		t.Fatal(err)
	}
	b2, err := store.AddBlock(128, 1, fixedPolicy{nodes: []topology.NodeID{2}})
	if err != nil {
		t.Fatal(err)
	}
	j := &job.Job{ID: 1, Spec: job.Spec{Name: "sever", Profile: job.Profile{
		Name: "sever", MapSelectivity: 1, MapRate: 1e6, ReduceRate: 1e6,
	}}}
	// R1 is fed only by the map on node 1, R2 only by the map on node 2.
	j.Maps = []*job.MapTask{
		{Job: j, Index: 0, Block: b1, Size: 128, Out: []float64{10, 0}, OutputCurve: 1,
			Node: 1, State: job.TaskDone, Progress: 1},
		{Job: j, Index: 1, Block: b2, Size: 128, Out: []float64{0, 10}, OutputCurve: 1,
			Node: 2, State: job.TaskDone, Progress: 1},
	}
	j.Reduces = []*job.ReduceTask{
		{Job: j, Index: 0, Node: -1},
		{Job: j, Index: 1, Node: -1},
	}
	cm, err := NewCostModel(net, store, net, ModeNetworkCondition)
	if err != nil {
		t.Fatal(err)
	}
	net.SetHostLinkFactor(2, 0) // sever R2's only source
	rc := cm.NewReduceCoster(j, Oracle{})

	avail := NewAvail([]topology.NodeID{0, 1, 3})
	if c := rc.Cost(0, 1); !math.IsInf(c, 1) {
		t.Fatalf("R2 on node 0 costs %v across a severed link, want +Inf", c)
	}
	best, ok := SelectReduceTask(rc, nil, j.Reduces, 0, avail)
	if !ok {
		t.Fatal("reachable candidate R1 not selected")
	}
	if best.ReduceTask.Index != 0 {
		t.Fatalf("selected R%d, want R1 (R2 is unreachable)", best.ReduceTask.Index+1)
	}
	if math.IsInf(best.Cost, 1) {
		t.Fatal("selected placement has infinite cost")
	}
	if _, ok := SelectReduceTask(rc, nil, j.Reduces[1:], 0, avail); ok {
		t.Fatal("task with no reachable placement selected anyway")
	}
}

// fixedProb is a test model returning a recognizable constant for any
// non-local placement.
type fixedProb struct{}

func (fixedProb) Name() string { return "fixed" }
func (fixedProb) Prob(avg, cost float64) float64 {
	if cost <= 0 {
		return 1
	}
	return 0.123
}

// TestSelectionProbComesFromModel pins the single source of truth for
// Choice.Prob: selection computes it with the configured model, so a
// non-default model's probability — not Formula 4's — reaches the gate.
func TestSelectionProbComesFromModel(t *testing.T) {
	cm, j := fig2Setup(t)
	avail := NewAvail([]topology.NodeID{0, 1, 2, 3})
	sel, ok := SelectMapTask(cm, fixedProb{}, j.Maps, 3, avail) // remote-only node
	if !ok {
		t.Fatal("no candidate")
	}
	if sel.Best.Prob != 0.123 {
		t.Fatalf("map Choice.Prob = %v, want the model's 0.123", sel.Best.Prob)
	}
	j.Maps[0].State = job.TaskDone
	j.Maps[0].Node = 2
	j.Maps[1].State = job.TaskDone
	j.Maps[1].Node = 1
	rc := cm.NewReduceCoster(j, Oracle{})
	best, ok := SelectReduceTask(rc, fixedProb{}, j.Reduces, 0, avail)
	if !ok {
		t.Fatal("no reduce candidate")
	}
	if best.Prob != 0.123 {
		t.Fatalf("reduce Choice.Prob = %v, want the model's 0.123", best.Prob)
	}
}
