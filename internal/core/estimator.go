package core

import (
	"math"

	"mapsched/internal/job"
)

// Estimator predicts the final intermediate volume I_jf a map task will
// have produced for a reduce partition, from scheduler-visible progress
// counters only (the heartbeat-reported A_jf and d_read of Section
// II-B-2).
type Estimator interface {
	// EstimateOutput returns the predicted final I_jf for map m and reduce
	// partition f. Implementations must return 0 when no information is
	// available (e.g. the map has not read any input yet).
	EstimateOutput(m *job.MapTask, f int) float64
	// Name identifies the estimator in experiment output.
	Name() string
}

// ScalarEstimator marks estimators whose prediction factors into the
// task's final output row times a per-task scalar:
//
//	EstimateOutput(m, f) ≡ m.Out[f] · Scale(m)
//
// The factorization lets ReduceCoster maintain its per-node aggregation
// incrementally: when a map's progress changes, only its node's row needs
// recomputation, at O(#reduces) per contributing map instead of a full
// O(#maps × #reduces) re-aggregation. All built-in estimators factor this
// way; custom estimators that do not simply fall back to full rebuilds.
type ScalarEstimator interface {
	Estimator
	// Scale returns the per-task multiplier applied to m.Out.
	Scale(m *job.MapTask) float64
}

// ProgressScaled is the paper's estimator: Î_jf = A_jf · B_j / d_read —
// the current output scaled by the inverse of the input fraction consumed.
// For a finished map A_jf equals I_jf and the estimate is exact.
type ProgressScaled struct{}

// Name implements Estimator.
func (ProgressScaled) Name() string { return "progress-scaled" }

// EstimateOutput implements Estimator.
func (ProgressScaled) EstimateOutput(m *job.MapTask, f int) float64 {
	if m.State == job.TaskDone {
		return m.Out[f] // A_jf at completion is the true I_jf
	}
	d := m.DRead()
	if d <= 0 {
		return 0
	}
	return m.CurrentOut(f) * m.Size / d
}

// Scale implements ScalarEstimator: Î_jf/I_jf = p^γ · B_j / d_read.
func (ProgressScaled) Scale(m *job.MapTask) float64 {
	if m.State == job.TaskDone {
		return 1
	}
	d := m.DRead()
	if d <= 0 || m.Progress <= 0 {
		return 0
	}
	return math.Pow(m.Progress, m.OutputCurve) * m.Size / d
}

// CurrentSize is the Coupling-scheduler baseline: use the in-progress
// intermediate size A_jf as-is, with no scaling. The paper's Section
// II-B-2 example shows how this mis-ranks placements when map progress is
// uneven.
type CurrentSize struct{}

// Name implements Estimator.
func (CurrentSize) Name() string { return "current-size" }

// EstimateOutput implements Estimator.
func (CurrentSize) EstimateOutput(m *job.MapTask, f int) float64 {
	if m.State == job.TaskDone {
		return m.Out[f]
	}
	if m.DRead() <= 0 {
		return 0
	}
	return m.CurrentOut(f)
}

// Scale implements ScalarEstimator: A_jf/I_jf = p^γ.
func (CurrentSize) Scale(m *job.MapTask) float64 {
	if m.State == job.TaskDone {
		return 1
	}
	if m.DRead() <= 0 || m.Progress <= 0 {
		return 0
	}
	return math.Pow(m.Progress, m.OutputCurve)
}

// Oracle returns the ground-truth I_jf. It is not realizable in a real
// cluster and exists only as the upper bound for the estimator ablation.
type Oracle struct{}

// Name implements Estimator.
func (Oracle) Name() string { return "oracle" }

// EstimateOutput implements Estimator.
func (Oracle) EstimateOutput(m *job.MapTask, f int) float64 { return m.Out[f] }

// Scale implements ScalarEstimator.
func (Oracle) Scale(*job.MapTask) float64 { return 1 }
