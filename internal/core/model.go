package core

import (
	"fmt"
	"math"
)

// ProbabilityModel maps a (C_avg, C) cost pair to an assignment
// probability. The paper uses the exponential model of Formula 4 and
// leaves "various probabilistic computation models ... and their impacts
// on the job performance" as future work (Section V); the additional
// models here implement that exploration.
//
// Every model must satisfy the paper's qualitative contract:
// P ∈ [0, 1], P = 1 when C = 0 (data-local), non-decreasing in C_avg and
// non-increasing in C.
type ProbabilityModel interface {
	// Prob returns the assignment probability for a placement of cost
	// cost when the expected cost over available nodes is avg.
	Prob(avg, cost float64) float64
	// Name identifies the model in experiment output.
	Name() string
}

// Exponential is the paper's model: P = 1 − exp(−C_avg/C) (Formula 4).
type Exponential struct{}

// Name implements ProbabilityModel.
func (Exponential) Name() string { return "exponential" }

// Prob implements ProbabilityModel.
func (Exponential) Prob(avg, cost float64) float64 { return AssignProb(avg, cost) }

// Linear assigns P = min(1, C_avg/C): proportional to the cost ratio,
// saturating at the average. More permissive than the exponential model
// for placements just below average cost, harsher far above it.
type Linear struct{}

// Name implements ProbabilityModel.
func (Linear) Name() string { return "linear" }

// Prob implements ProbabilityModel.
func (Linear) Prob(avg, cost float64) float64 {
	if cost <= 0 {
		return 1
	}
	if math.IsInf(cost, 1) || avg <= 0 {
		return 0
	}
	p := avg / cost
	if p > 1 {
		return 1
	}
	return p
}

// Rational assigns P = C_avg/(C_avg + k·C) for a shape parameter k > 0:
// a smooth hyperbolic decay with P = 1/(1+k) at C = C_avg. k = 1 gives
// the classic half-at-average rule.
type Rational struct {
	K float64
}

// Name implements ProbabilityModel.
func (r Rational) Name() string { return fmt.Sprintf("rational(k=%g)", r.k()) }

func (r Rational) k() float64 {
	if r.K <= 0 {
		return 1
	}
	return r.K
}

// Prob implements ProbabilityModel.
func (r Rational) Prob(avg, cost float64) float64 {
	if cost <= 0 {
		return 1
	}
	if math.IsInf(cost, 1) || avg <= 0 {
		return 0
	}
	if math.IsInf(avg, 1) {
		return 1 // any finite cost is infinitely below average
	}
	return avg / (avg + r.k()*cost)
}

// Step is the degenerate deterministic model: P = 1 when C ≤ C_avg, else
// 0. It removes the probabilistic relaxation entirely and serves as the
// harsh end of the exploration.
type Step struct{}

// Name implements ProbabilityModel.
func (Step) Name() string { return "step" }

// Prob implements ProbabilityModel.
func (Step) Prob(avg, cost float64) float64 {
	if cost <= 0 {
		return 1
	}
	if math.IsInf(cost, 1) {
		return 0
	}
	if cost <= avg {
		return 1
	}
	return 0
}

// Models lists the built-in probability models in presentation order.
func Models() []ProbabilityModel {
	return []ProbabilityModel{Exponential{}, Linear{}, Rational{K: 1}, Step{}}
}

// ValidateModel checks the qualitative contract on a sample grid; used by
// tests and by callers accepting user-supplied models.
func ValidateModel(m ProbabilityModel) error {
	if m.Prob(123, 0) != 1 {
		return fmt.Errorf("core: model %s: P(avg,0) != 1", m.Name())
	}
	grid := []float64{0.1, 0.5, 1, 2, 5, 10, 100}
	for _, avg := range grid {
		prev := math.Inf(1)
		for _, cost := range grid {
			p := m.Prob(avg, cost)
			if p < 0 || p > 1 {
				return fmt.Errorf("core: model %s: P(%v,%v) = %v outside [0,1]", m.Name(), avg, cost, p)
			}
			if p > prev+1e-12 {
				return fmt.Errorf("core: model %s: P increasing in cost at (%v,%v)", m.Name(), avg, cost)
			}
			prev = p
		}
	}
	for _, cost := range grid {
		prev := -1.0
		for _, avg := range grid {
			p := m.Prob(avg, cost)
			if p < prev-1e-12 {
				return fmt.Errorf("core: model %s: P decreasing in avg at (%v,%v)", m.Name(), avg, cost)
			}
			prev = p
		}
	}
	return nil
}
