package core

import (
	"math"
	"sort"
	"testing"

	"mapsched/internal/hdfs"
	"mapsched/internal/job"
	"mapsched/internal/sim"
	"mapsched/internal/topology"
)

// churnSetup builds a multi-rack cluster with a randomly placed job for
// the cache-equivalence tests.
func churnSetup(t *testing.T, mode Mode, seed int64) (*sim.Engine, *topology.Cluster, *CostModel, *job.Job) {
	t.Helper()
	eng := sim.NewEngine()
	spec := topology.DefaultSpec()
	spec.Racks = 3
	spec.NodesPerRack = 8
	cl, err := topology.NewCluster(eng, spec)
	if err != nil {
		t.Fatal(err)
	}
	store := hdfs.NewStore(cl, sim.NewRNG(seed))
	prof := job.Profile{
		Name: "churn", MapSelectivity: 1, MapRate: 1e6, ReduceRate: 1e6,
		PartitionSkew: 0.5, SelectivityJitter: 0.2, OutputCurveSpread: 0.3,
	}
	j, err := job.New(1, job.Spec{
		Name: "churn", Profile: prof, InputBytes: 40 * 64e6, BlockSize: 64e6,
		NumReduces: 7, Replication: 2,
	}, store, sim.NewRNG(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	var rate topology.RateObserver
	if mode == ModeNetworkCondition {
		rate = cl
	}
	cm, err := NewCostModel(cl, store, rate, mode)
	if err != nil {
		t.Fatal(err)
	}
	return eng, cl, cm, j
}

// churnMaps applies one round of random task-state churn: launches,
// progress advances, completions, failure-style reverts to pending, and
// speculation-style node moves.
func churnMaps(j *job.Job, n int, rng *sim.RNG, nodes int) {
	for i := 0; i < len(j.Maps); i++ {
		if rng.Float64() > 0.4 {
			continue
		}
		m := j.Maps[rng.Intn(len(j.Maps))]
		switch rng.Intn(5) {
		case 0: // launch or relocate
			m.State = job.TaskRunning
			m.Node = topology.NodeID(rng.Intn(nodes))
			m.Progress = rng.Float64()
		case 1: // progress advance
			if m.State == job.TaskRunning {
				m.Progress = math.Min(1, m.Progress+rng.Float64()*0.3)
			}
		case 2: // finish
			if m.State == job.TaskRunning {
				m.State = job.TaskDone
				m.Progress = 1
			}
		case 3: // node failure: task reverts to pending
			m.State = job.TaskPending
			m.Node = -1
			m.Progress = 0
		case 4: // speculation win on another node
			if m.State == job.TaskRunning {
				m.Node = topology.NodeID(rng.Intn(nodes))
			}
		}
	}
}

// randomAvail draws a sorted non-empty subset of nodes.
func randomAvail(rng *sim.RNG, nodes int) []topology.NodeID {
	var out []topology.NodeID
	for k := 0; k < nodes; k++ {
		if rng.Float64() < 0.5 {
			out = append(out, topology.NodeID(k))
		}
	}
	if len(out) == 0 {
		out = append(out, topology.NodeID(rng.Intn(nodes)))
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// requireCostersEqual asserts that a refreshed coster and a freshly built
// one are bit-identical in every observable: costs, averages, residency
// and totals.
func requireCostersEqual(t *testing.T, round int, got, want *ReduceCoster, nodes int, rng *sim.RNG) {
	t.Helper()
	if !equalNodes(got.nodes, want.nodes) {
		t.Fatalf("round %d: node sets differ: %v vs %v", round, got.nodes, want.nodes)
	}
	nf := got.j.NumReduces()
	for f := 0; f < nf; f++ {
		for i := 0; i < nodes; i++ {
			n := topology.NodeID(i)
			if a, b := got.Cost(n, f), want.Cost(n, f); a != b {
				t.Fatalf("round %d: Cost(%d,%d) = %v, fresh build says %v", round, n, f, a, b)
			}
			if a, b := got.OnNode(n, f), want.OnNode(n, f); a != b {
				t.Fatalf("round %d: OnNode(%d,%d) = %v, fresh build says %v", round, n, f, a, b)
			}
		}
		if a, b := got.TotalEstimated(f), want.TotalEstimated(f); a != b {
			t.Fatalf("round %d: TotalEstimated(%d) = %v, fresh build says %v", round, f, a, b)
		}
		avail := NewAvail(randomAvail(rng, nodes))
		if a, b := got.CostAvg(f, avail), want.CostAvg(f, avail); a != b {
			t.Fatalf("round %d: CostAvg(%d) = %v, fresh build says %v", round, f, a, b)
		}
	}
}

// TestRefreshMatchesRebuild drives random task churn through an
// incrementally refreshed ReduceCoster and checks it stays bit-identical
// to a coster built from scratch at every step, for each built-in
// estimator.
func TestRefreshMatchesRebuild(t *testing.T) {
	for _, est := range []Estimator{ProgressScaled{}, CurrentSize{}, Oracle{}} {
		t.Run(est.Name(), func(t *testing.T) {
			_, cl, cm, j := churnSetup(t, ModeHops, 21)
			rng := sim.NewRNG(33)
			rc := cm.NewReduceCoster(j, est)
			for round := 0; round < 60; round++ {
				churnMaps(j, 10, rng, cl.Size())
				rc.Refresh()
				requireCostersEqual(t, round, rc, cm.NewReduceCoster(j, est), cl.Size(), rng)
			}
		})
	}
}

// nonScalar hides the ScalarEstimator factorization, forcing Refresh down
// the full-rebuild fallback.
type nonScalar struct{}

func (nonScalar) Name() string { return "non-scalar" }
func (nonScalar) EstimateOutput(m *job.MapTask, f int) float64 {
	return ProgressScaled{}.EstimateOutput(m, f)
}

// TestRefreshFallsBackWithoutScalarEstimator checks the generic-estimator
// path: Refresh must still equal a fresh build.
func TestRefreshFallsBackWithoutScalarEstimator(t *testing.T) {
	_, cl, cm, j := churnSetup(t, ModeHops, 5)
	rng := sim.NewRNG(6)
	est := nonScalar{}
	if _, ok := Estimator(est).(ScalarEstimator); ok {
		t.Fatal("test estimator unexpectedly scalar")
	}
	rc := cm.NewReduceCoster(j, est)
	for round := 0; round < 20; round++ {
		churnMaps(j, 10, rng, cl.Size())
		rc.Refresh()
		requireCostersEqual(t, round, rc, cm.NewReduceCoster(j, est), cl.Size(), rng)
	}
}

// TestReduceCosterAvgTracksNetworkEpoch pins the invalidation rule in
// network-condition mode: CostAvg must follow rate changes caused by flow
// churn instead of serving stale distance sums.
func TestReduceCosterAvgTracksNetworkEpoch(t *testing.T) {
	eng, cl, cm, j := churnSetup(t, ModeNetworkCondition, 9)
	rng := sim.NewRNG(10)
	churnMaps(j, 10, rng, cl.Size())
	rc := cm.NewReduceCoster(j, ProgressScaled{})
	avail := randomAvail(rng, cl.Size())
	naive := func(f int) float64 {
		var sum float64
		for _, k := range avail {
			sum += rc.Cost(k, f)
		}
		return sum / float64(len(avail))
	}
	const f = 0
	if got, want := rc.CostAvg(f, NewAvail(avail)), naive(f); math.Abs(got-want) > 1e-9*math.Abs(want) {
		t.Fatalf("CostAvg = %v, want %v", got, want)
	}
	// Congest the network: path rates, hence distances, change.
	for i := 0; i < 30; i++ {
		src := topology.NodeID(rng.Intn(cl.Size()))
		dst := topology.NodeID(rng.Intn(cl.Size()))
		if src != dst {
			cl.Transfer(src, dst, 5e6, nil)
		}
	}
	for i := 0; i < 20; i++ {
		eng.Step()
	}
	if got, want := rc.CostAvg(f, NewAvail(avail)), naive(f); math.Abs(got-want) > 1e-9*math.Abs(want) {
		t.Fatalf("after churn: CostAvg = %v, want %v (stale cache?)", got, want)
	}
}

// hideEpoch strips the Epoch method from a rate observer, simulating a
// custom observer with unknown dynamics.
type hideEpoch struct{ r topology.RateObserver }

func (h hideEpoch) PathRate(a, b topology.NodeID) float64 { return h.r.PathRate(a, b) }

// TestMapCosterMatchesNaive checks the cached Formula 1 path against the
// direct computation, bit for bit, across distance modes, epoch churn and
// changing avail sets — including the no-epoch-signal fallback.
func TestMapCosterMatchesNaive(t *testing.T) {
	cases := []struct {
		name string
		mode Mode
		hide bool
	}{
		{"hops", ModeHops, false},
		{"netcond", ModeNetworkCondition, false},
		{"netcond-no-epoch", ModeNetworkCondition, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng, cl, cm, j := churnSetup(t, tc.mode, 13)
			if tc.hide {
				var err error
				cm, err = NewCostModel(cl, cm.store, hideEpoch{cl}, tc.mode)
				if err != nil {
					t.Fatal(err)
				}
				if _, ok := cm.DistanceEpoch(); ok {
					t.Fatal("epoch unexpectedly available")
				}
			}
			mc := cm.NewMapCoster()
			rng := sim.NewRNG(14)
			for round := 0; round < 25; round++ {
				if tc.mode == ModeNetworkCondition && round%3 == 0 {
					src := topology.NodeID(rng.Intn(cl.Size()))
					dst := topology.NodeID(rng.Intn(cl.Size()))
					if src != dst {
						cl.Transfer(src, dst, 2e6, nil)
					}
					for i := 0; i < 5 && eng.Pending() > 0; i++ {
						eng.Step()
					}
				}
				avail := randomAvail(rng, cl.Size())
				for _, m := range j.Maps {
					n := topology.NodeID(rng.Intn(cl.Size()))
					if got, want := mc.Cost(m, n), cm.MapCost(m, n); got != want {
						t.Fatalf("round %d: Cost(m%d,%d) = %v, naive %v", round, m.Index, n, got, want)
					}
					if got, want := mc.CostAvg(m, NewAvail(avail)), cm.MapCostAvg(m, avail); got != want {
						t.Fatalf("round %d: CostAvg(m%d) = %v, naive %v", round, m.Index, got, want)
					}
				}
			}
			if mc.Len() != len(j.Maps) {
				t.Fatalf("cached rows = %d, want %d", mc.Len(), len(j.Maps))
			}
			mc.Forget(j)
			if mc.Len() != 0 {
				t.Fatalf("Forget left %d rows", mc.Len())
			}
		})
	}
}

// TestSelectMapTaskWithMatchesDirect checks Algorithm 1 end to end: the
// cached evaluator must pick the same task with the same probability and
// costs as the uncached one.
func TestSelectMapTaskWithMatchesDirect(t *testing.T) {
	_, cl, cm, j := churnSetup(t, ModeHops, 17)
	mc := cm.NewMapCoster()
	rng := sim.NewRNG(18)
	for round := 0; round < 20; round++ {
		avail := NewAvail(randomAvail(rng, cl.Size()))
		node := topology.NodeID(rng.Intn(cl.Size()))
		a, okA := SelectMapTask(cm, nil, j.Maps, node, avail)
		b, okB := SelectMapTaskWith(mc, nil, j.Maps, node, avail)
		if okA != okB {
			t.Fatalf("round %d: ok %v vs %v", round, okA, okB)
		}
		if !okA {
			continue
		}
		if a.Best != b.Best {
			t.Fatalf("round %d: best differs: %+v vs %+v", round, a.Best, b.Best)
		}
		if a.Local != b.Local {
			t.Fatalf("round %d: local differs: %+v vs %+v", round, a.Local, b.Local)
		}
	}
}
