package core

import (
	"math"

	"mapsched/internal/job"
	"mapsched/internal/topology"
)

// AssignProb computes the paper's placement probability (Formulas 4–5):
//
//	P = 1 − exp(−C_avg / C)
//
// where C is the cost of the candidate placement and C_avg the expected
// cost of assigning the task uniformly over currently available nodes.
// A zero-cost placement (data-local) has probability 1; an infinitely
// expensive one probability 0. When both C_avg and C are zero — every
// available node is equally free — the placement is also certain.
func AssignProb(avg, cost float64) float64 {
	if cost <= 0 {
		return 1
	}
	if math.IsInf(cost, 1) {
		return 0
	}
	if avg <= 0 {
		return 0
	}
	return 1 - math.Exp(-avg/cost)
}

// CostCeiling returns the largest placement cost (as a multiple of C_avg)
// that still clears the threshold pmin: from P ≥ P_min follows
// C ≤ C_avg / (−ln(1−P_min)). Exposed for analysis and the P_min sweep
// experiment. pmin outside (0,1) returns +Inf (no ceiling).
func CostCeiling(pmin float64) float64 {
	if pmin <= 0 || pmin >= 1 {
		return math.Inf(1)
	}
	return 1 / (-math.Log(1 - pmin))
}

// Choice is the outcome of the candidate-selection step of Algorithms 1–2.
type Choice struct {
	MapTask    *job.MapTask    // set for map selection
	ReduceTask *job.ReduceTask // set for reduce selection
	Prob       float64         // P_mj or P_rf under the configured model
	Cost       float64         // C on the offered node
	AvgCost    float64         // C_avg over available nodes
}

// Saving is the absolute transmission-cost saving of placing the task here
// rather than uniformly at random: C_avg − C. Section II-C selects "the
// map task that leads to the maximum transmission cost saving by assigning
// it instantly to D_i than assigning it to other nodes"; unlike the
// probability (whose C_avg/C ratio is scale-invariant in the data volume),
// the saving weights large tasks more, so heavy partitions launch early
// instead of straggling at the tail.
func (c Choice) Saving() float64 { return c.AvgCost - c.Cost }

// MapSelection is the result of scanning one job's pending maps for a
// slot offer: the maximum-saving candidate overall, plus the
// maximum-saving candidate among the zero-cost (data-local) ones. The two
// differ whenever a large remote task out-saves a small local one
// (C_avg − C ranks by absolute bytes moved); Algorithm 1's P = 1 rule
// still applies to the local candidate, so the scheduler falls back to it
// when Best is gated away.
type MapSelection struct {
	Best  Choice
	Local Choice
}

// HasLocal reports whether a zero-cost candidate was found.
func (s MapSelection) HasLocal() bool { return s.Local.MapTask != nil }

// MapCostEvaluator abstracts Formula 1 so Algorithm 1 can run against
// either the direct CostModel computation or a MapCoster cache. The two
// implementations produce bit-identical costs, so selection decisions do
// not depend on which one is plugged in.
type MapCostEvaluator interface {
	Cost(m *job.MapTask, i topology.NodeID) float64
	CostAvg(m *job.MapTask, avail Avail) float64
}

// SelectOptimizer is implemented by evaluators that can prune the
// candidate scan: SavingBound caps the saving any placement of a task can
// reach, SizeOrder yields candidate indices with bounds non-increasing,
// and ZeroCost identifies data-local placements without evaluating costs.
// Pruning never changes the selected candidates — the bound-ordered scan
// stops only once no remaining task can beat (or tie) the incumbent.
type SelectOptimizer interface {
	Prunable() bool
	SavingBound(m *job.MapTask) float64
	SizeOrder(tasks []*job.MapTask) []int
	ZeroCost(m *job.MapTask, i topology.NodeID) bool
}

// pruneMinTasks is the scan length below which the bound-ordered scan is
// not worth its sorting overhead.
const pruneMinTasks = 16

// directMapCost is the uncached reference evaluator.
type directMapCost struct{ cm *CostModel }

func (d directMapCost) Cost(m *job.MapTask, i topology.NodeID) float64 {
	return d.cm.MapCost(m, i)
}

func (d directMapCost) CostAvg(m *job.MapTask, avail Avail) float64 {
	return d.cm.MapCostAvg(m, avail.Nodes)
}

// Evaluator returns the uncached MapCostEvaluator view of the model.
func (c *CostModel) Evaluator() MapCostEvaluator { return directMapCost{c} }

// SelectMapTask runs lines 2–9 of Algorithm 1 against the uncached cost
// model; see SelectMapTaskWith.
func SelectMapTask(cm *CostModel, model ProbabilityModel, tasks []*job.MapTask, i topology.NodeID, avail Avail) (MapSelection, bool) {
	return SelectMapTaskWith(directMapCost{cm}, model, tasks, i, avail)
}

// SelectMapTaskWith runs lines 2–9 of Algorithm 1: for every candidate map
// task it computes the placement cost on node i (Formula 1), the average
// cost over nodes with free map slots, and the probability under the
// configured model (Formula 4 when model is nil), returning the candidate
// with the largest transmission-cost saving plus the best data-local
// candidate (which Best need not subsume: a large remote task can
// out-save a small local one). Ties on saving go to the earlier task, for
// determinism. ok is false when tasks is empty or no candidate is
// schedulable.
//
// When the evaluator is a SelectOptimizer, candidates are scanned in
// non-increasing SavingBound order and the scan stops at the first bound
// strictly below the incumbent's saving — no pruned task can beat or tie
// Best. The pruned tail is swept once more for zero-cost placements only
// (their savings sit below the cut too, so Best is final, but the
// data-local rule needs them): decisions are bit-identical to the full
// scan.
func SelectMapTaskWith(ev MapCostEvaluator, model ProbabilityModel, tasks []*job.MapTask, i topology.NodeID, avail Avail) (MapSelection, bool) {
	if model == nil {
		model = Exponential{}
	}
	var sel MapSelection
	ok := false
	bestPos, localPos := -1, -1
	consider := func(pos int, m *job.MapTask) {
		cost := ev.Cost(m, i)
		if math.IsInf(cost, 1) {
			return
		}
		avg := ev.CostAvg(m, avail)
		c := Choice{MapTask: m, Prob: model.Prob(avg, cost), Cost: cost, AvgCost: avg}
		s := c.Saving()
		if bestPos < 0 || s > sel.Best.Saving() || (s == sel.Best.Saving() && pos < bestPos) {
			sel.Best, bestPos, ok = c, pos, true
		}
		if cost == 0 {
			if localPos < 0 || s > sel.Local.Saving() || (s == sel.Local.Saving() && pos < localPos) {
				sel.Local, localPos = c, pos
			}
		}
	}
	so, prune := ev.(SelectOptimizer)
	if prune {
		prune = so.Prunable() && len(tasks) > pruneMinTasks
	}
	if !prune {
		for pos, m := range tasks {
			consider(pos, m)
		}
		return sel, ok
	}
	order := so.SizeOrder(tasks)
	cut := len(order)
	for oi, pos := range order {
		m := tasks[pos]
		if ok && so.SavingBound(m) < sel.Best.Saving() {
			cut = oi
			break
		}
		consider(pos, m)
	}
	for _, pos := range order[cut:] {
		if m := tasks[pos]; so.ZeroCost(m, i) {
			consider(pos, m)
		}
	}
	return sel, ok
}

// SelectReduceTask runs lines 2–10 of Algorithm 2: for every candidate
// reduce task it computes the shuffle cost on node i (Formula 3 with the
// estimator's Î_jf), the average over nodes with free reduce slots, and
// the probability under the configured model (Formula 5 when model is
// nil), returning the candidate with the largest transmission-cost
// saving. Unreachable placements (infinite cost, e.g. after a link sever)
// are skipped, exactly as in map selection — a −Inf saving must not
// become a job's "best" and mask schedulable candidates. ok is false when
// tasks is empty or every placement is unreachable.
func SelectReduceTask(rc *ReduceCoster, model ProbabilityModel, tasks []*job.ReduceTask, i topology.NodeID, avail Avail) (best Choice, ok bool) {
	if model == nil {
		model = Exponential{}
	}
	for _, r := range tasks {
		cost := rc.Cost(i, r.Index)
		if math.IsInf(cost, 1) {
			continue
		}
		avg := rc.CostAvg(r.Index, avail)
		c := Choice{ReduceTask: r, Prob: model.Prob(avg, cost), Cost: cost, AvgCost: avg}
		if !ok || c.Saving() > best.Saving() {
			best = c
			ok = true
		}
	}
	return best, ok
}
