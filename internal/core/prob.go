package core

import (
	"math"

	"mapsched/internal/job"
	"mapsched/internal/topology"
)

// AssignProb computes the paper's placement probability (Formulas 4–5):
//
//	P = 1 − exp(−C_avg / C)
//
// where C is the cost of the candidate placement and C_avg the expected
// cost of assigning the task uniformly over currently available nodes.
// A zero-cost placement (data-local) has probability 1; an infinitely
// expensive one probability 0. When both C_avg and C are zero — every
// available node is equally free — the placement is also certain.
func AssignProb(avg, cost float64) float64 {
	if cost <= 0 {
		return 1
	}
	if math.IsInf(cost, 1) {
		return 0
	}
	if avg <= 0 {
		return 0
	}
	return 1 - math.Exp(-avg/cost)
}

// CostCeiling returns the largest placement cost (as a multiple of C_avg)
// that still clears the threshold pmin: from P ≥ P_min follows
// C ≤ C_avg / (−ln(1−P_min)). Exposed for analysis and the P_min sweep
// experiment. pmin outside (0,1) returns +Inf (no ceiling).
func CostCeiling(pmin float64) float64 {
	if pmin <= 0 || pmin >= 1 {
		return math.Inf(1)
	}
	return 1 / (-math.Log(1 - pmin))
}

// Choice is the outcome of the candidate-selection step of Algorithms 1–2.
type Choice struct {
	MapTask    *job.MapTask    // set for map selection
	ReduceTask *job.ReduceTask // set for reduce selection
	Prob       float64         // P_mj or P_rf
	Cost       float64         // C on the offered node
	AvgCost    float64         // C_avg over available nodes
}

// Saving is the absolute transmission-cost saving of placing the task here
// rather than uniformly at random: C_avg − C. Section II-C selects "the
// map task that leads to the maximum transmission cost saving by assigning
// it instantly to D_i than assigning it to other nodes"; unlike the
// probability (whose C_avg/C ratio is scale-invariant in the data volume),
// the saving weights large tasks more, so heavy partitions launch early
// instead of straggling at the tail.
func (c Choice) Saving() float64 { return c.AvgCost - c.Cost }

// MapCostEvaluator abstracts Formula 1 so Algorithm 1 can run against
// either the direct CostModel computation or a MapCoster cache. The two
// implementations produce bit-identical costs, so selection decisions do
// not depend on which one is plugged in.
type MapCostEvaluator interface {
	Cost(m *job.MapTask, i topology.NodeID) float64
	CostAvg(m *job.MapTask, avail []topology.NodeID) float64
}

// directMapCost is the uncached reference evaluator.
type directMapCost struct{ cm *CostModel }

func (d directMapCost) Cost(m *job.MapTask, i topology.NodeID) float64 {
	return d.cm.MapCost(m, i)
}

func (d directMapCost) CostAvg(m *job.MapTask, avail []topology.NodeID) float64 {
	return d.cm.MapCostAvg(m, avail)
}

// Evaluator returns the uncached MapCostEvaluator view of the model.
func (c *CostModel) Evaluator() MapCostEvaluator { return directMapCost{c} }

// SelectMapTask runs lines 2–9 of Algorithm 1 against the uncached cost
// model; see SelectMapTaskWith.
func SelectMapTask(cm *CostModel, tasks []*job.MapTask, i topology.NodeID, avail []topology.NodeID) (best Choice, ok bool) {
	return SelectMapTaskWith(directMapCost{cm}, tasks, i, avail)
}

// SelectMapTaskWith runs lines 2–9 of Algorithm 1: for every candidate map
// task it computes the placement cost on node i (Formula 1), the average
// cost over nodes with free map slots, and the probability (Formula 4),
// returning the candidate with the largest transmission-cost saving
// (Section II-C's selection criterion; data-local candidates always rank
// first since their saving equals the full average cost). ok is false
// when tasks is empty or no candidate is schedulable.
func SelectMapTaskWith(ev MapCostEvaluator, tasks []*job.MapTask, i topology.NodeID, avail []topology.NodeID) (best Choice, ok bool) {
	for _, m := range tasks {
		cost := ev.Cost(m, i)
		if math.IsInf(cost, 1) {
			continue
		}
		avg := ev.CostAvg(m, avail)
		c := Choice{MapTask: m, Prob: AssignProb(avg, cost), Cost: cost, AvgCost: avg}
		if !ok || c.Saving() > best.Saving() {
			best = c
			ok = true
		}
	}
	return best, ok
}

// SelectReduceTask runs lines 2–10 of Algorithm 2: for every candidate
// reduce task it computes the shuffle cost on node i (Formula 3 with the
// estimator's Î_jf), the average over nodes with free reduce slots, and
// the probability (Formula 5), returning the candidate with the largest
// transmission-cost saving. ok is false when tasks is empty.
func SelectReduceTask(rc *ReduceCoster, tasks []*job.ReduceTask, i topology.NodeID, avail []topology.NodeID) (best Choice, ok bool) {
	for _, r := range tasks {
		cost := rc.Cost(i, r.Index)
		avg := rc.CostAvg(r.Index, avail)
		c := Choice{ReduceTask: r, Prob: AssignProb(avg, cost), Cost: cost, AvgCost: avg}
		if !ok || c.Saving() > best.Saving() {
			best = c
			ok = true
		}
	}
	return best, ok
}
