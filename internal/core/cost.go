// Package core implements the paper's contribution: the fine-grained data
// transmission cost model (Formulas 1–3), the progress-based estimator of
// intermediate data size (Section II-B-2), and the probabilistic placement
// rule P = 1 − exp(−C_avg/C) with its threshold P_min (Formulas 4–5,
// Algorithms 1–2). It is deliberately independent of the simulation engine:
// everything here operates on the scheduler-visible state of jobs and the
// network, so the same code could back a real JobTracker plug-in.
package core

import (
	"fmt"
	"math"

	"mapsched/internal/hdfs"
	"mapsched/internal/job"
	"mapsched/internal/topology"
)

// Mode selects how the distance matrix H is interpreted.
type Mode int

const (
	// ModeHops uses the hop-count distance matrix H directly (Formula 1–3).
	ModeHops Mode = iota
	// ModeNetworkCondition replaces each h_ab with the inverse of the
	// currently observed transmission rate of the path a→b
	// (Section II-B-3), so congested paths look "farther".
	ModeNetworkCondition
)

// String names the mode for experiment output.
func (m Mode) String() string {
	switch m {
	case ModeHops:
		return "hops"
	case ModeNetworkCondition:
		return "network-condition"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// CostModel evaluates the transmission cost of candidate task placements.
type CostModel struct {
	net   topology.Network
	store *hdfs.Store
	rate  topology.RateObserver // required for ModeNetworkCondition
	mode  Mode
}

// NewCostModel builds a cost model. rate may be nil when mode is ModeHops.
func NewCostModel(net topology.Network, store *hdfs.Store, rate topology.RateObserver, mode Mode) (*CostModel, error) {
	if net == nil || store == nil {
		return nil, fmt.Errorf("core: nil network or store")
	}
	if mode == ModeNetworkCondition && rate == nil {
		return nil, fmt.Errorf("core: network-condition mode requires a rate observer")
	}
	return &CostModel{net: net, store: store, rate: rate, mode: mode}, nil
}

// Mode returns the distance interpretation in use.
func (c *CostModel) Mode() Mode { return c.mode }

// Distance returns the effective H entry for the pair (a, b): hop count in
// ModeHops, or 1/rate in ModeNetworkCondition. The diagonal of H is 0 in
// hop mode; in network-condition mode a local transfer costs 1/diskRate,
// which is negligible next to any network path, preserving the paper's
// "local task has (almost) zero cost" property.
func (c *CostModel) Distance(a, b topology.NodeID) float64 {
	switch c.mode {
	case ModeNetworkCondition:
		r := c.rate.PathRate(a, b)
		if r <= 0 {
			return math.Inf(1)
		}
		return 1 / r
	default:
		return c.net.Distance(a, b)
	}
}

// MapCost returns C_m(i,j) = B_j · min_{l: L_lj=1} h_il (Formula 1): the
// cost of running map task m on node i, reading from the nearest replica.
func (c *CostModel) MapCost(m *job.MapTask, i topology.NodeID) float64 {
	best := math.Inf(1)
	for _, l := range c.store.Replicas(m.Block) {
		if d := c.Distance(i, l); d < best {
			best = d
			if best == 0 {
				break
			}
		}
	}
	if math.IsInf(best, 1) {
		return math.Inf(1) // no replicas: unschedulable
	}
	return m.Size * best
}

// MapCostAvg returns C_avg = Σ_k C_m(k,j) / N_m over the nodes that
// currently have free map slots (Algorithm 1 line 6).
func (c *CostModel) MapCostAvg(m *job.MapTask, avail []topology.NodeID) float64 {
	if len(avail) == 0 {
		return 0
	}
	var sum float64
	for _, k := range avail {
		sum += c.MapCost(m, k)
	}
	return sum / float64(len(avail))
}

// Locality classifies a map placement for the Table III metrics: on a
// replica node, in a replica's rack, or remote.
func (c *CostModel) Locality(m *job.MapTask, i topology.NodeID) job.Locality {
	rack := c.net.Rack(i)
	sameRack := false
	for _, l := range c.store.Replicas(m.Block) {
		if l == i {
			return job.LocalNode
		}
		if c.net.Rack(l) == rack {
			sameRack = true
		}
	}
	if sameRack {
		return job.LocalRack
	}
	return job.Remote
}

// ReduceCoster evaluates Formula 3 for one job at one scheduling instant.
// It aggregates the estimated intermediate volume by map-hosting node
// (S_pf = Σ_{maps j on p} Î_jf), so evaluating a candidate node costs
// O(#map-nodes) rather than O(#maps).
type ReduceCoster struct {
	cm    *CostModel
	j     *job.Job
	est   Estimator
	nodes []topology.NodeID // nodes hosting ≥1 launched map
	s     [][]float64       // s[nodeIdx][f] = S_pf

	// CostAvg cache: hSum[pi] = Σ_{k in avail} h(p_i, k) for the avail set
	// last seen, so the average over candidate nodes is O(#map-nodes) per
	// partition instead of O(#avail × #map-nodes).
	availCache []topology.NodeID
	hSum       []float64
}

// NewReduceCoster snapshots the launched maps of j under the estimator.
// Only maps that have been assigned to a node (x_jp defined) contribute,
// matching Formula 2's use of the placement matrix X.
func (c *CostModel) NewReduceCoster(j *job.Job, est Estimator) *ReduceCoster {
	rc := &ReduceCoster{cm: c, j: j, est: est}
	idx := make(map[topology.NodeID]int)
	nf := j.NumReduces()
	for _, m := range j.Maps {
		if m.State == job.TaskPending || m.Node < 0 {
			continue
		}
		pi, ok := idx[m.Node]
		if !ok {
			pi = len(rc.nodes)
			idx[m.Node] = pi
			rc.nodes = append(rc.nodes, m.Node)
			rc.s = append(rc.s, make([]float64, nf))
		}
		row := rc.s[pi]
		for f := 0; f < nf; f++ {
			row[f] += est.EstimateOutput(m, f)
		}
	}
	return rc
}

// Cost returns C_r(i,f) = Σ_p h_pi · S_pf (Formula 3) for reduce index f
// placed on node i.
func (rc *ReduceCoster) Cost(i topology.NodeID, f int) float64 {
	var sum float64
	for pi, p := range rc.nodes {
		if s := rc.s[pi][f]; s > 0 {
			sum += rc.cm.Distance(p, i) * s
		}
	}
	return sum
}

// CostAvg returns C_avg = Σ_k C_r(k,f) / N_r over nodes with free reduce
// slots (Algorithm 2 line 7). Summation is reordered as
// Σ_p S_pf · (Σ_k h_pk), with the inner distance sums cached per avail
// set; the result is identical to averaging Cost over avail.
func (rc *ReduceCoster) CostAvg(f int, avail []topology.NodeID) float64 {
	if len(avail) == 0 {
		return 0
	}
	if !equalNodes(rc.availCache, avail) {
		rc.availCache = append(rc.availCache[:0], avail...)
		if cap(rc.hSum) < len(rc.nodes) {
			rc.hSum = make([]float64, len(rc.nodes))
		}
		rc.hSum = rc.hSum[:len(rc.nodes)]
		for pi, p := range rc.nodes {
			var h float64
			for _, k := range avail {
				h += rc.cm.Distance(p, k)
			}
			rc.hSum[pi] = h
		}
	}
	var sum float64
	for pi := range rc.nodes {
		if v := rc.s[pi][f]; v > 0 {
			sum += v * rc.hSum[pi]
		}
	}
	return sum / float64(len(avail))
}

// equalNodes reports whether two node lists are identical.
func equalNodes(a, b []topology.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// OnNode returns S_if: the estimated bytes of partition f already resident
// on node i (produced by maps that ran there).
func (rc *ReduceCoster) OnNode(i topology.NodeID, f int) float64 {
	for pi, p := range rc.nodes {
		if p == i {
			return rc.s[pi][f]
		}
	}
	return 0
}

// TotalEstimated returns Σ_p S_pf: the estimated total shuffle input of
// reduce f from maps launched so far.
func (rc *ReduceCoster) TotalEstimated(f int) float64 {
	var sum float64
	for pi := range rc.nodes {
		sum += rc.s[pi][f]
	}
	return sum
}

// Centrality returns the node among candidates minimizing Cost(i, f) — the
// data-"centrality" node used by the Coupling scheduler baseline. Returns
// false if candidates is empty.
func (rc *ReduceCoster) Centrality(f int, candidates []topology.NodeID) (topology.NodeID, bool) {
	if len(candidates) == 0 {
		return 0, false
	}
	best := candidates[0]
	bestC := rc.Cost(best, f)
	for _, k := range candidates[1:] {
		if c := rc.Cost(k, f); c < bestC {
			bestC = c
			best = k
		}
	}
	return best, true
}
