// Package core implements the paper's contribution: the fine-grained data
// transmission cost model (Formulas 1–3), the progress-based estimator of
// intermediate data size (Section II-B-2), and the probabilistic placement
// rule P = 1 − exp(−C_avg/C) with its threshold P_min (Formulas 4–5,
// Algorithms 1–2). It is deliberately independent of the simulation engine:
// everything here operates on the scheduler-visible state of jobs and the
// network, so the same code could back a real JobTracker plug-in.
package core

import (
	"fmt"
	"math"
	"sort"

	"mapsched/internal/hdfs"
	"mapsched/internal/job"
	"mapsched/internal/topology"
)

// Mode selects how the distance matrix H is interpreted.
type Mode int

const (
	// ModeHops uses the hop-count distance matrix H directly (Formula 1–3).
	ModeHops Mode = iota
	// ModeNetworkCondition replaces each h_ab with the inverse of the
	// currently observed transmission rate of the path a→b
	// (Section II-B-3), so congested paths look "farther".
	ModeNetworkCondition
)

// String names the mode for experiment output.
func (m Mode) String() string {
	switch m {
	case ModeHops:
		return "hops"
	case ModeNetworkCondition:
		return "network-condition"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// CostModel evaluates the transmission cost of candidate task placements.
type CostModel struct {
	net   topology.Network
	store *hdfs.Store
	rate  topology.RateObserver // required for ModeNetworkCondition
	mode  Mode

	// classes is the distance-class view of the network in hop mode (nil
	// otherwise, and nil when the network has no class structure): hop
	// distances depend only on the (class(a), class(b)) pair, so sums over
	// the avail set collapse to per-class terms. Network-condition mode
	// keeps per-pair dynamic distances and never collapses.
	classes *topology.Classes

	// Scratch buffers for the class-collapsed sums, sized to classes.Num().
	clCounts []int     // per-class avail counts when the caller has none
	clReps   []int     // per-class replicas-in-avail counts
	clMinD   []float64 // per-class nearest-replica distance (uncached path)
}

// NewCostModel builds a cost model. rate may be nil when mode is ModeHops.
func NewCostModel(net topology.Network, store *hdfs.Store, rate topology.RateObserver, mode Mode) (*CostModel, error) {
	if net == nil || store == nil {
		return nil, fmt.Errorf("core: nil network or store")
	}
	if mode == ModeNetworkCondition && rate == nil {
		return nil, fmt.Errorf("core: network-condition mode requires a rate observer")
	}
	c := &CostModel{net: net, store: store, rate: rate, mode: mode}
	if mode == ModeHops {
		if cn, ok := net.(topology.ClassedNetwork); ok {
			if cl := cn.Classes(); cl != nil {
				c.classes = cl
				c.clCounts = make([]int, cl.Num())
				c.clReps = make([]int, cl.Num())
				c.clMinD = make([]float64, cl.Num())
			}
		}
	}
	return c, nil
}

// Mode returns the distance interpretation in use.
func (c *CostModel) Mode() Mode { return c.mode }

// Classes returns the distance-class structure the model collapses sums
// over, or nil when costs are evaluated per node.
func (c *CostModel) Classes() *topology.Classes { return c.classes }

// Distance returns the effective H entry for the pair (a, b): hop count in
// ModeHops, or 1/rate in ModeNetworkCondition. The diagonal of H is 0 in
// hop mode; in network-condition mode a local transfer costs 1/diskRate,
// which is negligible next to any network path, preserving the paper's
// "local task has (almost) zero cost" property.
func (c *CostModel) Distance(a, b topology.NodeID) float64 {
	switch c.mode {
	case ModeNetworkCondition:
		r := c.rate.PathRate(a, b)
		if r <= 0 {
			return math.Inf(1)
		}
		return 1 / r
	default:
		return c.net.Distance(a, b)
	}
}

// epochObserver is implemented by rate observers whose PathRate output is
// constant between advances of a counter (topology.Cluster exposes its
// flow network's recompute epoch; topology.Matrix rates never change).
type epochObserver interface {
	Epoch() uint64
}

// DistanceEpoch returns a counter that advances whenever a cost derived
// from Distance and the block store may change; ok reports whether such a
// signal exists. The counter is the sum of two monotone components: the
// store's replica-mutation epoch (replica loss moves a block's nearest
// replica even when distances are static) and, in network-condition mode,
// the rate observer's recompute epoch. Since both only grow, equal sums
// imply both are unchanged. In hop mode with an immutable store the value
// is constantly 0, preserving pre-fault cache behaviour. When the rate
// observer exposes no epoch, ok is false and callers must treat every
// distance as volatile (caching would change scheduling decisions).
func (c *CostModel) DistanceEpoch() (uint64, bool) {
	if c.mode != ModeNetworkCondition {
		return c.store.Epoch(), true
	}
	if eo, ok := c.rate.(epochObserver); ok {
		return eo.Epoch() + c.store.Epoch(), true
	}
	return 0, false
}

// MapCost returns C_m(i,j) = B_j · min_{l: L_lj=1} h_il (Formula 1): the
// cost of running map task m on node i, reading from the nearest replica.
func (c *CostModel) MapCost(m *job.MapTask, i topology.NodeID) float64 {
	best := math.Inf(1)
	for _, l := range c.store.Replicas(m.Block) {
		if d := c.Distance(i, l); d < best {
			best = d
			if best == 0 {
				break
			}
		}
	}
	if math.IsInf(best, 1) {
		return math.Inf(1) // no replicas: unschedulable
	}
	return m.Size * best
}

// MapCostAvg returns C_avg = Σ_k C_m(k,j) / N_m over the nodes that
// currently have free map slots (Algorithm 1 line 6). With a class
// structure the per-node sum collapses to Σ_c n'_c · minD_c where n'_c
// counts the class's free non-replica nodes (replica members cost 0) and
// minD_c is the class's nearest-replica distance; the MapCoster computes
// the identical expression, so the two stay bit-exact.
func (c *CostModel) MapCostAvg(m *job.MapTask, avail []topology.NodeID) float64 {
	if len(avail) == 0 {
		return 0
	}
	if c.classes != nil {
		replicas := c.store.Replicas(m.Block)
		c.classMinD(replicas, c.clMinD)
		return m.Size * c.classMapSum(replicas, avail, c.scanClassCounts(avail), c.clMinD) / float64(len(avail))
	}
	var sum float64
	for _, k := range avail {
		sum += c.MapCost(m, k)
	}
	return sum / float64(len(avail))
}

// scanClassCounts fills the scratch per-class counts by scanning avail —
// the reference path; the engine maintains the same counts incrementally.
func (c *CostModel) scanClassCounts(avail []topology.NodeID) []int {
	counts := c.clCounts
	for i := range counts {
		counts[i] = 0
	}
	for _, k := range avail {
		counts[c.classes.Of(k)]++
	}
	return counts
}

// classMinD fills minD[ci] with the class's nearest-replica distance
// min_{l: L_lj=1} D(ci, class(l)) — the class-collapsed form of Formula
// 1's inner minimum (all-Inf when the block has no replicas).
func (c *CostModel) classMinD(replicas []topology.NodeID, minD []float64) {
	cl := c.classes
	for ci := range minD {
		best := math.Inf(1)
		for _, l := range replicas {
			if d := cl.D(ci, cl.Of(l)); d < best {
				best = d
			}
		}
		minD[ci] = best
	}
}

// classMapSum returns Σ_c n'_c · minD_c with n'_c = free nodes of class c
// minus the block's replicas among them (a replica node reads locally at
// distance 0, and skipping n' <= 0 keeps a singleton class's +Inf intra
// distance away from a zero multiplier). Both MapCostAvg and the
// MapCoster funnel through this function so their float operation order —
// and hence every selection decision — is identical.
func (c *CostModel) classMapSum(replicas, avail []topology.NodeID, counts []int, minD []float64) float64 {
	reps := c.clReps
	for _, l := range replicas {
		if containsNode(avail, l) {
			reps[c.classes.Of(l)]++
		}
	}
	var sum float64
	for ci, n := range counts {
		if n -= reps[ci]; n > 0 {
			sum += float64(n) * minD[ci]
		}
	}
	for _, l := range replicas {
		reps[c.classes.Of(l)] = 0
	}
	return sum
}

// classHSum returns Σ_{k in avail} h(p, k) collapsed to per-class terms:
// each class contributes count·D(class(p), class(k)), with p itself
// excluded from its own class (h(p,p) = 0). Skipping zero counts keeps a
// singleton class's +Inf intra distance out of the sum.
func (c *CostModel) classHSum(p topology.NodeID, counts []int, avail []topology.NodeID) float64 {
	cl := c.classes
	cp := cl.Of(p)
	self := 0
	if containsNode(avail, p) {
		self = 1
	}
	var sum float64
	for ci, n := range counts {
		if ci == cp {
			n -= self
		}
		if n > 0 {
			sum += float64(n) * cl.D(cp, ci)
		}
	}
	return sum
}

// Locality classifies a map placement for the Table III metrics: on a
// replica node, in a replica's rack, or remote.
func (c *CostModel) Locality(m *job.MapTask, i topology.NodeID) job.Locality {
	rack := c.net.Rack(i)
	sameRack := false
	for _, l := range c.store.Replicas(m.Block) {
		if l == i {
			return job.LocalNode
		}
		if c.net.Rack(l) == rack {
			sameRack = true
		}
	}
	if sameRack {
		return job.LocalRack
	}
	return job.Remote
}

// ReduceCoster evaluates Formula 3 for one job. It aggregates the
// estimated intermediate volume by map-hosting node (S_pf = Σ_{maps j on
// p} Î_jf), so evaluating a candidate node costs O(#map-nodes) rather
// than O(#maps). Nodes are kept in ascending NodeID order so that a fresh
// build and an incrementally Refreshed coster are bit-identical.
type ReduceCoster struct {
	cm   *CostModel
	j    *job.Job
	est  Estimator
	scal ScalarEstimator // non-nil when est factors into Out[f]·Scale(m)

	nodes   []topology.NodeID       // nodes hosting ≥1 launched map, ascending
	idx     map[topology.NodeID]int // node → index into nodes/s/members
	s       [][]float64             // s[pi][f] = S_pf
	members [][]int                 // members[pi] = map indices on node pi, ascending

	// Per-map snapshot consumed by Refresh to detect which rows changed.
	lastNode  []topology.NodeID // node at last snapshot; -1 when excluded
	lastScale []float64         // Scale(m) at last snapshot (scal only)
	dirtyBuf  []topology.NodeID

	// CostAvg cache: hSum[pi] = Σ_{k in avail} h(p_i, k) for the avail set
	// last seen, so the average over candidate nodes is O(#map-nodes) per
	// partition instead of O(#avail × #map-nodes). availEpoch records the
	// distance epoch the sums were computed at; availVersion the identity
	// of the avail snapshot (an O(1) stand-in for comparing the node list);
	// hValid is cleared whenever the map-node set changes structurally.
	availCache   []topology.NodeID
	availEpoch   uint64
	availVersion uint64
	hValid       bool
	hSum         []float64
}

// NewReduceCoster snapshots the launched maps of j under the estimator.
// Only maps that have been assigned to a node (x_jp defined) contribute,
// matching Formula 2's use of the placement matrix X.
func (c *CostModel) NewReduceCoster(j *job.Job, est Estimator) *ReduceCoster {
	rc := &ReduceCoster{cm: c, j: j, est: est}
	rc.scal, _ = est.(ScalarEstimator)
	rc.idx = make(map[topology.NodeID]int)
	rc.lastNode = make([]topology.NodeID, len(j.Maps))
	rc.lastScale = make([]float64, len(j.Maps))
	rc.rebuild()
	return rc
}

// Job returns the job this coster snapshots.
func (rc *ReduceCoster) Job() *job.Job { return rc.j }

// rebuild recomputes the whole snapshot from the job's current state.
func (rc *ReduceCoster) rebuild() {
	for p := range rc.idx {
		delete(rc.idx, p)
	}
	rc.nodes = rc.nodes[:0]
	rc.members = rc.members[:0]
	for i, m := range rc.j.Maps {
		if m.State == job.TaskPending || m.Node < 0 {
			rc.lastNode[i] = -1
			continue
		}
		rc.lastNode[i] = m.Node
		if rc.scal != nil {
			rc.lastScale[i] = rc.scal.Scale(m)
		}
		pi, ok := rc.idx[m.Node]
		if !ok {
			pi = len(rc.nodes)
			rc.idx[m.Node] = pi
			rc.nodes = append(rc.nodes, m.Node)
			rc.members = append(rc.members, nil)
		}
		rc.members[pi] = append(rc.members[pi], i)
	}
	sort.Sort(byNode{rc})
	rc.s = make([][]float64, len(rc.nodes))
	nf := rc.j.NumReduces()
	for pi, p := range rc.nodes {
		rc.idx[p] = pi
		rc.s[pi] = make([]float64, nf)
		rc.computeRow(pi)
	}
	rc.hValid = false
}

// byNode sorts the node list and the parallel member lists together.
type byNode struct{ rc *ReduceCoster }

func (b byNode) Len() int           { return len(b.rc.nodes) }
func (b byNode) Less(i, j int) bool { return b.rc.nodes[i] < b.rc.nodes[j] }
func (b byNode) Swap(i, j int) {
	b.rc.nodes[i], b.rc.nodes[j] = b.rc.nodes[j], b.rc.nodes[i]
	b.rc.members[i], b.rc.members[j] = b.rc.members[j], b.rc.members[i]
}

// computeRow re-aggregates S_pf for one node from its member maps in task
// order. Both the full rebuild and the incremental Refresh funnel through
// this function, so their float accumulation order — and hence every
// derived cost — is identical.
func (rc *ReduceCoster) computeRow(pi int) {
	nf := rc.j.NumReduces()
	row := rc.s[pi]
	for f := range row {
		row[f] = 0
	}
	if rc.scal != nil {
		for _, mi := range rc.members[pi] {
			m := rc.j.Maps[mi]
			sc := rc.lastScale[mi]
			for f := 0; f < nf; f++ {
				row[f] += m.Out[f] * sc
			}
		}
		return
	}
	for _, mi := range rc.members[pi] {
		m := rc.j.Maps[mi]
		for f := 0; f < nf; f++ {
			row[f] += rc.est.EstimateOutput(m, f)
		}
	}
}

// Refresh brings the snapshot up to date with the job's current task
// state. With a ScalarEstimator only the rows whose contributing maps
// changed (progress advanced, launched, finished, moved by speculation or
// failure) are re-aggregated; other estimators fall back to a full
// rebuild. The refreshed coster is bit-identical to a fresh
// NewReduceCoster of the same job state.
func (rc *ReduceCoster) Refresh() {
	if rc.scal == nil || len(rc.lastNode) != len(rc.j.Maps) {
		rc.rebuild()
		return
	}
	dirty := rc.dirtyBuf[:0]
	structural := false
	for i, m := range rc.j.Maps {
		cur := topology.NodeID(-1)
		if m.State != job.TaskPending && m.Node >= 0 {
			cur = m.Node
		}
		if cur == rc.lastNode[i] {
			if cur < 0 {
				continue
			}
			if sc := rc.scal.Scale(m); sc != rc.lastScale[i] {
				rc.lastScale[i] = sc
				dirty = append(dirty, cur)
			}
			continue
		}
		if old := rc.lastNode[i]; old >= 0 {
			pi := rc.idx[old]
			rc.members[pi] = removeInt(rc.members[pi], i)
			dirty = append(dirty, old)
		}
		if cur >= 0 {
			pi, ok := rc.idx[cur]
			if !ok {
				pi = rc.insertNode(cur)
				structural = true
			}
			rc.members[pi] = insertInt(rc.members[pi], i)
			rc.lastScale[i] = rc.scal.Scale(m)
			dirty = append(dirty, cur)
		}
		rc.lastNode[i] = cur
	}
	rc.dirtyBuf = dirty
	if len(dirty) == 0 {
		return
	}
	for _, p := range dirty {
		if pi, ok := rc.idx[p]; ok && len(rc.members[pi]) == 0 {
			rc.removeNode(pi)
			structural = true
		}
	}
	for _, p := range dirty {
		if pi, ok := rc.idx[p]; ok {
			rc.computeRow(pi)
		}
	}
	if structural {
		rc.hValid = false // node set changed: hSum rows are stale
	}
}

// insertNode splices a new node into the sorted node list and returns its
// index.
func (rc *ReduceCoster) insertNode(p topology.NodeID) int {
	pi := sort.Search(len(rc.nodes), func(k int) bool { return rc.nodes[k] >= p })
	rc.nodes = append(rc.nodes, 0)
	copy(rc.nodes[pi+1:], rc.nodes[pi:])
	rc.nodes[pi] = p
	rc.members = append(rc.members, nil)
	copy(rc.members[pi+1:], rc.members[pi:])
	rc.members[pi] = nil
	rc.s = append(rc.s, nil)
	copy(rc.s[pi+1:], rc.s[pi:])
	rc.s[pi] = make([]float64, rc.j.NumReduces())
	for k := pi; k < len(rc.nodes); k++ {
		rc.idx[rc.nodes[k]] = k
	}
	return pi
}

// removeNode drops the node at index pi, keeping the lists sorted.
func (rc *ReduceCoster) removeNode(pi int) {
	delete(rc.idx, rc.nodes[pi])
	copy(rc.nodes[pi:], rc.nodes[pi+1:])
	rc.nodes = rc.nodes[:len(rc.nodes)-1]
	copy(rc.members[pi:], rc.members[pi+1:])
	rc.members = rc.members[:len(rc.members)-1]
	copy(rc.s[pi:], rc.s[pi+1:])
	rc.s = rc.s[:len(rc.s)-1]
	for k := pi; k < len(rc.nodes); k++ {
		rc.idx[rc.nodes[k]] = k
	}
}

// insertInt inserts v into sorted slice a.
func insertInt(a []int, v int) []int {
	k := sort.SearchInts(a, v)
	a = append(a, 0)
	copy(a[k+1:], a[k:])
	a[k] = v
	return a
}

// removeInt removes v from sorted slice a if present.
func removeInt(a []int, v int) []int {
	k := sort.SearchInts(a, v)
	if k < len(a) && a[k] == v {
		copy(a[k:], a[k+1:])
		a = a[:len(a)-1]
	}
	return a
}

// Cost returns C_r(i,f) = Σ_p h_pi · S_pf (Formula 3) for reduce index f
// placed on node i.
func (rc *ReduceCoster) Cost(i topology.NodeID, f int) float64 {
	var sum float64
	for pi, p := range rc.nodes {
		if s := rc.s[pi][f]; s > 0 {
			sum += rc.cm.Distance(p, i) * s
		}
	}
	return sum
}

// CostAvg returns C_avg = Σ_k C_r(k,f) / N_r over nodes with free reduce
// slots (Algorithm 2 line 7). Summation is reordered as
// Σ_p S_pf · (Σ_k h_pk), with the inner distance sums cached per
// (avail set, distance epoch); the result is identical to averaging Cost
// over avail. A matching non-zero a.Version revalidates the cache in
// O(1); the node-list comparison is the fallback for ad-hoc snapshots.
// With a class structure each inner sum is the O(classes) classHSum; when
// distances are volatile with no epoch signal the sums are recomputed on
// every call.
func (rc *ReduceCoster) CostAvg(f int, a Avail) float64 {
	avail := a.Nodes
	if len(avail) == 0 {
		return 0
	}
	ep, epOK := rc.cm.DistanceEpoch()
	sameAvail := (a.Version != 0 && a.Version == rc.availVersion) || equalNodes(rc.availCache, avail)
	if !epOK || ep != rc.availEpoch || !rc.hValid || !sameAvail {
		rc.availEpoch = ep
		rc.availCache = append(rc.availCache[:0], avail...)
		if cap(rc.hSum) < len(rc.nodes) {
			rc.hSum = make([]float64, len(rc.nodes))
		}
		rc.hSum = rc.hSum[:len(rc.nodes)]
		if rc.cm.classes != nil {
			counts := a.Counts
			if counts == nil {
				counts = rc.cm.scanClassCounts(avail)
			}
			for pi, p := range rc.nodes {
				rc.hSum[pi] = rc.cm.classHSum(p, counts, avail)
			}
		} else {
			for pi, p := range rc.nodes {
				var h float64
				for _, k := range avail {
					h += rc.cm.Distance(p, k)
				}
				rc.hSum[pi] = h
			}
		}
		rc.hValid = true
	}
	rc.availVersion = a.Version
	var sum float64
	for pi := range rc.nodes {
		if v := rc.s[pi][f]; v > 0 {
			sum += v * rc.hSum[pi]
		}
	}
	return sum / float64(len(avail))
}

// equalNodes reports whether two node lists are identical.
func equalNodes(a, b []topology.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// OnNode returns S_if: the estimated bytes of partition f already resident
// on node i (produced by maps that ran there).
func (rc *ReduceCoster) OnNode(i topology.NodeID, f int) float64 {
	if pi, ok := rc.idx[i]; ok {
		return rc.s[pi][f]
	}
	return 0
}

// TotalEstimated returns Σ_p S_pf: the estimated total shuffle input of
// reduce f from maps launched so far.
func (rc *ReduceCoster) TotalEstimated(f int) float64 {
	var sum float64
	for pi := range rc.nodes {
		sum += rc.s[pi][f]
	}
	return sum
}

// Centrality returns the node among candidates minimizing Cost(i, f) — the
// data-"centrality" node used by the Coupling scheduler baseline. Returns
// false if candidates is empty.
func (rc *ReduceCoster) Centrality(f int, candidates []topology.NodeID) (topology.NodeID, bool) {
	if len(candidates) == 0 {
		return 0, false
	}
	best := candidates[0]
	bestC := rc.Cost(best, f)
	for _, k := range candidates[1:] {
		if c := rc.Cost(k, f); c < bestC {
			bestC = c
			best = k
		}
	}
	return best, true
}
