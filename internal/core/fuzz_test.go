package core

import (
	"math"
	"testing"
)

// FuzzAssignProb checks that every (avg, cost) pair, however degenerate,
// yields a probability in [0, 1] under every built-in model.
func FuzzAssignProb(f *testing.F) {
	f.Add(100.0, 50.0)
	f.Add(0.0, 0.0)
	f.Add(-5.0, 3.0)
	f.Add(math.MaxFloat64, 1.0)
	f.Add(math.Inf(1), 1.0) // regression: Rational once returned NaN here
	f.Fuzz(func(t *testing.T, avg, cost float64) {
		if math.IsNaN(avg) || math.IsNaN(cost) {
			return
		}
		for _, m := range Models() {
			p := m.Prob(avg, cost)
			if math.IsNaN(p) || p < 0 || p > 1 {
				t.Fatalf("%s.Prob(%v, %v) = %v", m.Name(), avg, cost, p)
			}
		}
	})
}

// FuzzCostCeiling checks the ceiling inverts the probability formula for
// all thresholds in (0,1).
func FuzzCostCeiling(f *testing.F) {
	f.Add(0.4)
	f.Add(0.999)
	f.Fuzz(func(t *testing.T, pmin float64) {
		if math.IsNaN(pmin) {
			return
		}
		c := CostCeiling(pmin)
		if pmin <= 0 || pmin >= 1 {
			if !math.IsInf(c, 1) {
				t.Fatalf("degenerate pmin %v has finite ceiling %v", pmin, c)
			}
			return
		}
		if c <= 0 {
			t.Fatalf("ceiling(%v) = %v", pmin, c)
		}
		got := AssignProb(1, c)
		if math.Abs(got-pmin) > 1e-6 {
			t.Fatalf("AssignProb at ceiling(%v) = %v", pmin, got)
		}
	})
}
