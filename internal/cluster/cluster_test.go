package cluster

import (
	"reflect"
	"testing"

	"mapsched/internal/sim"
	"mapsched/internal/topology"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 4, 2); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := New(3, -1, 2); err == nil {
		t.Error("negative slots accepted")
	}
	s, err := New(3, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 3 {
		t.Fatalf("Size = %d", s.Size())
	}
	m, r := s.TotalSlots()
	if m != 12 || r != 6 {
		t.Fatalf("TotalSlots = (%d,%d)", m, r)
	}
}

func TestSlotLifecycle(t *testing.T) {
	s, err := New(2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	n := s.Node(0)
	if n.FreeMapSlots() != 2 || n.FreeReduceSlots() != 1 {
		t.Fatal("fresh node has wrong free counts")
	}
	if err := n.AcquireMap(); err != nil {
		t.Fatal(err)
	}
	if err := n.AcquireMap(); err != nil {
		t.Fatal(err)
	}
	if err := n.AcquireMap(); err == nil {
		t.Fatal("over-acquired map slot")
	}
	if n.UsedMapSlots() != 2 {
		t.Fatalf("UsedMapSlots = %d", n.UsedMapSlots())
	}
	n.ReleaseMap()
	if n.FreeMapSlots() != 1 {
		t.Fatal("release did not free slot")
	}
	if err := n.AcquireReduce(); err != nil {
		t.Fatal(err)
	}
	if err := n.AcquireReduce(); err == nil {
		t.Fatal("over-acquired reduce slot")
	}
	n.ReleaseReduce()
	if n.UsedReduceSlots() != 0 {
		t.Fatal("reduce slot not released")
	}
}

func TestReleaseUnheldPanics(t *testing.T) {
	s, _ := New(1, 1, 1)
	n := s.Node(0)
	for _, f := range []func(){n.ReleaseMap, n.ReleaseReduce} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("releasing unheld slot did not panic")
				}
			}()
			f()
		}()
	}
}

func TestAvailNodeSets(t *testing.T) {
	s, _ := New(3, 1, 1)
	if got := s.AvailMapNodes(); len(got) != 3 {
		t.Fatalf("AvailMapNodes = %v", got)
	}
	if err := s.Node(1).AcquireMap(); err != nil {
		t.Fatal(err)
	}
	got := s.AvailMapNodes()
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("AvailMapNodes after acquire = %v", got)
	}
	if err := s.Node(0).AcquireReduce(); err != nil {
		t.Fatal(err)
	}
	if err := s.Node(2).AcquireReduce(); err != nil {
		t.Fatal(err)
	}
	if got := s.AvailReduceNodes(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("AvailReduceNodes = %v", got)
	}
	um, ur := s.UsedSlots()
	if um != 1 || ur != 2 {
		t.Fatalf("UsedSlots = (%d,%d)", um, ur)
	}
}

func TestResourceModeAccounting(t *testing.T) {
	s, err := New(1, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	n := s.Node(0)
	cap := Resources{MemMB: 8192, VCores: 8}
	mapReq := Resources{MemMB: 2048, VCores: 2}
	redReq := Resources{MemMB: 4096, VCores: 4}
	if err := n.EnableResources(cap, mapReq, redReq); err != nil {
		t.Fatal(err)
	}
	if !n.ResourceMode() {
		t.Fatal("resource mode not enabled")
	}
	if n.FreeMapSlots() != 4 || n.FreeReduceSlots() != 2 {
		t.Fatalf("idle headroom = %d/%d, want 4/2", n.FreeMapSlots(), n.FreeReduceSlots())
	}
	// One reduce container consumes half the node: only 2 maps fit beside it.
	if err := n.AcquireReduce(); err != nil {
		t.Fatal(err)
	}
	if n.FreeMapSlots() != 2 {
		t.Fatalf("map headroom beside a reduce = %d, want 2", n.FreeMapSlots())
	}
	if err := n.AcquireMap(); err != nil {
		t.Fatal(err)
	}
	if err := n.AcquireMap(); err != nil {
		t.Fatal(err)
	}
	if n.FreeMapSlots() != 0 || n.FreeReduceSlots() != 0 {
		t.Fatal("node should be full")
	}
	if err := n.AcquireMap(); err == nil {
		t.Fatal("over-committed a full node")
	}
	// Releases restore the full capacity.
	n.ReleaseMap()
	n.ReleaseMap()
	n.ReleaseReduce()
	if n.Used() != (Resources{}) {
		t.Fatalf("resources leaked: %+v", n.Used())
	}
	if n.FreeMapSlots() != 4 {
		t.Fatal("capacity not restored")
	}
}

func TestResourceModeFungibility(t *testing.T) {
	// The YARN benefit: the whole node can go to maps when no reduces run,
	// unlike the fixed 4+2 split.
	s, _ := New(1, 4, 2)
	n := s.Node(0)
	if err := n.EnableResources(Resources{MemMB: 16384, VCores: 16},
		Resources{MemMB: 2048, VCores: 2}, Resources{MemMB: 4096, VCores: 4}); err != nil {
		t.Fatal(err)
	}
	launched := 0
	for n.FreeMapSlots() > 0 {
		if err := n.AcquireMap(); err != nil {
			t.Fatal(err)
		}
		launched++
	}
	if launched != 8 {
		t.Fatalf("container mode ran %d maps on an idle node, want 8", launched)
	}
}

func TestResourceModeValidation(t *testing.T) {
	s, _ := New(1, 1, 1)
	n := s.Node(0)
	if err := n.EnableResources(Resources{}, Resources{MemMB: 1, VCores: 1}, Resources{MemMB: 1, VCores: 1}); err == nil {
		t.Error("zero capacity accepted")
	}
	if err := n.EnableResources(Resources{MemMB: 1, VCores: 1}, Resources{}, Resources{MemMB: 1, VCores: 1}); err == nil {
		t.Error("zero map request accepted")
	}
	if err := n.AcquireMap(); err != nil {
		t.Fatal(err)
	}
	if err := n.EnableResources(Resources{MemMB: 8, VCores: 8}, Resources{MemMB: 1, VCores: 1}, Resources{MemMB: 1, VCores: 1}); err == nil {
		t.Error("mode switch with running tasks accepted")
	}
	n.ReleaseMap()
	// Cluster-wide enable.
	s2, _ := New(3, 1, 1)
	if err := s2.EnableResources(Resources{MemMB: 4096, VCores: 4},
		Resources{MemMB: 1024, VCores: 1}, Resources{MemMB: 2048, VCores: 2}); err != nil {
		t.Fatal(err)
	}
	m, r := s2.TotalSlots()
	if m != 12 || r != 6 {
		t.Fatalf("cluster container capacity = %d/%d, want 12/6", m, r)
	}
}

// TestAvailCountsTrackChurn drives every availability-affecting mutation
// and cross-checks the incrementally maintained per-class counts against
// a from-scratch rescan after each step, plus the version contract: the
// version changes whenever membership does and holds still otherwise.
func TestAvailCountsTrackChurn(t *testing.T) {
	spec := topology.DefaultSpec()
	spec.Racks = 2
	spec.NodesPerRack = 4
	top, err := topology.NewCluster(sim.NewEngine(), spec)
	if err != nil {
		t.Fatal(err)
	}
	classes := top.Classes()
	s, err := New(8, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	s.SetClasses(classes)

	check := func(step string) {
		t.Helper()
		for pass, get := range map[string]func() ([]topology.NodeID, []int, uint64){
			"map": s.AvailMap, "reduce": s.AvailReduce,
		} {
			nodes, counts, _ := get()
			want := make([]int, classes.Num())
			for _, n := range nodes {
				want[classes.Of(n)]++
			}
			if !reflect.DeepEqual(counts, want) {
				t.Fatalf("%s after %s: incremental counts %v, rescan %v (avail %v)",
					pass, step, counts, want, nodes)
			}
		}
	}
	mapVersion := func() uint64 { _, _, v := s.AvailMap(); return v }

	check("init")
	v0 := mapVersion()
	if mapVersion() != v0 {
		t.Fatal("version moved without a mutation")
	}

	// Fill node 3's map slots: leaves the map set at the second acquire.
	n3 := s.Node(3)
	if err := n3.AcquireMap(); err != nil {
		t.Fatal(err)
	}
	check("first acquire")
	if err := n3.AcquireMap(); err != nil {
		t.Fatal(err)
	}
	check("second acquire")
	if mapVersion() == v0 {
		t.Fatal("version unchanged though node 3 left the map set")
	}

	// Offline, blacklist, resource-mode, and release churn across both
	// racks.
	s.Node(5).SetOffline(true)
	check("offline 5")
	s.Node(0).SetBlacklisted(true)
	check("blacklist 0")
	if err := s.Node(6).EnableResources(Resources{VCores: 4, MemMB: 8192},
		Resources{VCores: 1, MemMB: 2048}, Resources{VCores: 1, MemMB: 4096}); err != nil {
		t.Fatal(err)
	}
	check("resource mode 6")
	n3.ReleaseMap()
	check("release")
	s.Node(5).SetOffline(false)
	check("online 5")
	s.Node(0).SetBlacklisted(false)
	check("unblacklist 0")

	// Reduce-side churn too.
	if err := s.Node(7).AcquireReduce(); err != nil {
		t.Fatal(err)
	}
	check("acquire reduce 7")
	s.Node(7).ReleaseReduce()
	check("release reduce 7")

	// Clearing the classes drops the counts entirely.
	s.SetClasses(nil)
	if _, counts, _ := s.AvailMap(); counts != nil {
		t.Fatalf("counts %v after clearing classes, want nil", counts)
	}
}
