// Package cluster models the slot-based resource state of a Hadoop 1.x
// cluster: each node exposes a fixed number of map and reduce computing
// slots, acquired when a task launches and released at completion.
package cluster

import (
	"fmt"

	"mapsched/internal/topology"
)

// Resources is a YARN-style capacity vector.
type Resources struct {
	MemMB  int
	VCores int
}

// fits reports whether adding req to used stays within cap.
func fits(used, req, cap Resources) bool {
	return used.MemMB+req.MemMB <= cap.MemMB && used.VCores+req.VCores <= cap.VCores
}

// headroom returns how many req-sized containers fit into cap−used.
func headroom(used, req, cap Resources) int {
	if req.MemMB <= 0 || req.VCores <= 0 {
		return 0
	}
	m := (cap.MemMB - used.MemMB) / req.MemMB
	v := (cap.VCores - used.VCores) / req.VCores
	if v < m {
		m = v
	}
	if m < 0 {
		m = 0
	}
	return m
}

// Node is the slot state of one TaskTracker. It operates in one of two
// modes: Hadoop 1.x fixed slots (the paper's testbed), or a YARN-style
// container model where map and reduce tasks request resource vectors
// from a shared node capacity (the paper's Section V future work).
type Node struct {
	ID          topology.NodeID
	MapSlots    int
	ReduceSlots int

	usedMap     int
	usedReduce  int
	offline     bool
	blacklisted bool

	resourceMode      bool
	capacity          Resources
	used              Resources
	mapReq, reduceReq Resources
}

// SetOffline marks the node dead (failure injection): it stops offering
// slots. Slot bookkeeping of already-killed tasks must be released before
// going offline.
func (n *Node) SetOffline(off bool) { n.offline = off }

// Offline reports whether the node is dead.
func (n *Node) Offline() bool { return n.offline }

// SetBlacklisted marks the node as a repeat offender: it stops offering
// slots (and so drops out of the scheduler's candidate sets) but, unlike
// an offline node, keeps running its already-launched tasks — Hadoop's
// per-job TaskTracker blacklist behaviour.
func (n *Node) SetBlacklisted(b bool) { n.blacklisted = b }

// Blacklisted reports whether the node is blacklisted.
func (n *Node) Blacklisted() bool { return n.blacklisted }

// EnableResources switches the node to the container model with the given
// capacity and per-task requests.
func (n *Node) EnableResources(capacity, mapReq, reduceReq Resources) error {
	if capacity.MemMB <= 0 || capacity.VCores <= 0 {
		return fmt.Errorf("cluster: node %d: capacity must be positive", n.ID)
	}
	if mapReq.MemMB <= 0 || mapReq.VCores <= 0 || reduceReq.MemMB <= 0 || reduceReq.VCores <= 0 {
		return fmt.Errorf("cluster: node %d: container requests must be positive", n.ID)
	}
	if n.usedMap != 0 || n.usedReduce != 0 {
		return fmt.Errorf("cluster: node %d: cannot switch modes with tasks running", n.ID)
	}
	n.resourceMode = true
	n.capacity = capacity
	n.mapReq = mapReq
	n.reduceReq = reduceReq
	return nil
}

// ResourceMode reports whether the node uses the container model.
func (n *Node) ResourceMode() bool { return n.resourceMode }

// Used returns the consumed resources (container mode only).
func (n *Node) Used() Resources { return n.used }

// FreeMapSlots returns how many more map tasks the node can start right
// now (0 when offline or blacklisted). In container mode this is the
// resource headroom measured in map containers.
func (n *Node) FreeMapSlots() int {
	if n.offline || n.blacklisted {
		return 0
	}
	if n.resourceMode {
		return headroom(n.used, n.mapReq, n.capacity)
	}
	return n.MapSlots - n.usedMap
}

// FreeReduceSlots returns how many more reduce tasks the node can start
// right now (0 when offline or blacklisted).
func (n *Node) FreeReduceSlots() int {
	if n.offline || n.blacklisted {
		return 0
	}
	if n.resourceMode {
		return headroom(n.used, n.reduceReq, n.capacity)
	}
	return n.ReduceSlots - n.usedReduce
}

// UsedMapSlots returns the number of occupied map slots.
func (n *Node) UsedMapSlots() int { return n.usedMap }

// UsedReduceSlots returns the number of occupied reduce slots.
func (n *Node) UsedReduceSlots() int { return n.usedReduce }

// AcquireMap occupies a map slot (or container); it fails when none fits.
func (n *Node) AcquireMap() error {
	if n.resourceMode {
		if !fits(n.used, n.mapReq, n.capacity) {
			return fmt.Errorf("cluster: node %d has no room for a map container", n.ID)
		}
		n.used.MemMB += n.mapReq.MemMB
		n.used.VCores += n.mapReq.VCores
		n.usedMap++
		return nil
	}
	if n.usedMap >= n.MapSlots {
		return fmt.Errorf("cluster: node %d has no free map slot", n.ID)
	}
	n.usedMap++
	return nil
}

// ReleaseMap frees a map slot; releasing an unheld slot panics (it is
// always an engine bug).
func (n *Node) ReleaseMap() {
	if n.usedMap <= 0 {
		panic(fmt.Sprintf("cluster: node %d released an unheld map slot", n.ID))
	}
	n.usedMap--
	if n.resourceMode {
		n.used.MemMB -= n.mapReq.MemMB
		n.used.VCores -= n.mapReq.VCores
	}
}

// AcquireReduce occupies a reduce slot (or container).
func (n *Node) AcquireReduce() error {
	if n.resourceMode {
		if !fits(n.used, n.reduceReq, n.capacity) {
			return fmt.Errorf("cluster: node %d has no room for a reduce container", n.ID)
		}
		n.used.MemMB += n.reduceReq.MemMB
		n.used.VCores += n.reduceReq.VCores
		n.usedReduce++
		return nil
	}
	if n.usedReduce >= n.ReduceSlots {
		return fmt.Errorf("cluster: node %d has no free reduce slot", n.ID)
	}
	n.usedReduce++
	return nil
}

// ReleaseReduce frees a reduce slot (or container).
func (n *Node) ReleaseReduce() {
	if n.usedReduce <= 0 {
		panic(fmt.Sprintf("cluster: node %d released an unheld reduce slot", n.ID))
	}
	n.usedReduce--
	if n.resourceMode {
		n.used.MemMB -= n.reduceReq.MemMB
		n.used.VCores -= n.reduceReq.VCores
	}
}

// State is the slot state of the whole cluster.
type State struct {
	nodes []*Node
}

// New creates a cluster of n nodes with uniform slot counts.
func New(n, mapSlots, reduceSlots int) (*State, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: %d nodes, need >= 1", n)
	}
	if mapSlots < 0 || reduceSlots < 0 {
		return nil, fmt.Errorf("cluster: negative slot counts")
	}
	s := &State{nodes: make([]*Node, n)}
	for i := range s.nodes {
		s.nodes[i] = &Node{ID: topology.NodeID(i), MapSlots: mapSlots, ReduceSlots: reduceSlots}
	}
	return s, nil
}

// Size returns the node count.
func (s *State) Size() int { return len(s.nodes) }

// Node returns the node with the given ID.
func (s *State) Node(id topology.NodeID) *Node { return s.nodes[id] }

// AvailMapNodes returns the IDs of nodes with at least one free map slot
// (the N_m set of Formula 4), in ID order for determinism.
func (s *State) AvailMapNodes() []topology.NodeID {
	var out []topology.NodeID
	for _, n := range s.nodes {
		if n.FreeMapSlots() > 0 {
			out = append(out, n.ID)
		}
	}
	return out
}

// AvailReduceNodes returns the IDs of nodes with at least one free reduce
// slot (the N_r set of Formula 5).
func (s *State) AvailReduceNodes() []topology.NodeID {
	var out []topology.NodeID
	for _, n := range s.nodes {
		if n.FreeReduceSlots() > 0 {
			out = append(out, n.ID)
		}
	}
	return out
}

// UsedSlots returns the cluster-wide occupied map and reduce slot counts.
func (s *State) UsedSlots() (maps, reduces int) {
	for _, n := range s.nodes {
		maps += n.usedMap
		reduces += n.usedReduce
	}
	return maps, reduces
}

// TotalSlots returns the cluster-wide slot capacities. In container mode
// the capacity is expressed as how many containers of each kind would fit
// an idle cluster.
func (s *State) TotalSlots() (maps, reduces int) {
	for _, n := range s.nodes {
		if n.resourceMode {
			maps += headroom(Resources{}, n.mapReq, n.capacity)
			reduces += headroom(Resources{}, n.reduceReq, n.capacity)
			continue
		}
		maps += n.MapSlots
		reduces += n.ReduceSlots
	}
	return maps, reduces
}

// EnableResources switches every node to the container model.
func (s *State) EnableResources(capacity, mapReq, reduceReq Resources) error {
	for _, n := range s.nodes {
		if err := n.EnableResources(capacity, mapReq, reduceReq); err != nil {
			return err
		}
	}
	return nil
}
