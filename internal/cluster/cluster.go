// Package cluster models the slot-based resource state of a Hadoop 1.x
// cluster: each node exposes a fixed number of map and reduce computing
// slots, acquired when a task launches and released at completion.
package cluster

import (
	"fmt"

	"mapsched/internal/topology"
)

// Resources is a YARN-style capacity vector.
type Resources struct {
	MemMB  int
	VCores int
}

// fits reports whether adding req to used stays within cap.
func fits(used, req, cap Resources) bool {
	return used.MemMB+req.MemMB <= cap.MemMB && used.VCores+req.VCores <= cap.VCores
}

// headroom returns how many req-sized containers fit into cap−used.
func headroom(used, req, cap Resources) int {
	if req.MemMB <= 0 || req.VCores <= 0 {
		return 0
	}
	m := (cap.MemMB - used.MemMB) / req.MemMB
	v := (cap.VCores - used.VCores) / req.VCores
	if v < m {
		m = v
	}
	if m < 0 {
		m = 0
	}
	return m
}

// Node is the slot state of one TaskTracker. It operates in one of two
// modes: Hadoop 1.x fixed slots (the paper's testbed), or a YARN-style
// container model where map and reduce tasks request resource vectors
// from a shared node capacity (the paper's Section V future work).
type Node struct {
	ID          topology.NodeID
	MapSlots    int
	ReduceSlots int

	usedMap     int
	usedReduce  int
	offline     bool
	blacklisted bool

	resourceMode      bool
	capacity          Resources
	used              Resources
	mapReq, reduceReq Resources

	// st points back to the owning State so slot transitions keep the
	// cluster-wide availability sets incremental; nil for bare Node values
	// built outside New (unit tests), which then behave as before.
	st *State
}

// freeBefore snapshots the node's availability in both slot kinds; paired
// with noteChange around every mutation.
func (n *Node) freeBefore() (mapFree, reduceFree bool) {
	return n.FreeMapSlots() > 0, n.FreeReduceSlots() > 0
}

// noteChange compares the node's availability against the pre-mutation
// snapshot and tells the State about 0↔free transitions, keeping the
// avail sets and their per-class counts exact without per-offer rescans.
func (n *Node) noteChange(mapWasFree, reduceWasFree bool) {
	if n.st == nil {
		return
	}
	if f := n.FreeMapSlots() > 0; f != mapWasFree {
		n.st.availMap.flip(n.ID, f)
	}
	if f := n.FreeReduceSlots() > 0; f != reduceWasFree {
		n.st.availReduce.flip(n.ID, f)
	}
}

// SetOffline marks the node dead (failure injection): it stops offering
// slots. Slot bookkeeping of already-killed tasks must be released before
// going offline.
func (n *Node) SetOffline(off bool) {
	bm, br := n.freeBefore()
	n.offline = off
	n.noteChange(bm, br)
}

// Offline reports whether the node is dead.
func (n *Node) Offline() bool { return n.offline }

// SetBlacklisted marks the node as a repeat offender: it stops offering
// slots (and so drops out of the scheduler's candidate sets) but, unlike
// an offline node, keeps running its already-launched tasks — Hadoop's
// per-job TaskTracker blacklist behaviour.
func (n *Node) SetBlacklisted(b bool) {
	bm, br := n.freeBefore()
	n.blacklisted = b
	n.noteChange(bm, br)
}

// Blacklisted reports whether the node is blacklisted.
func (n *Node) Blacklisted() bool { return n.blacklisted }

// EnableResources switches the node to the container model with the given
// capacity and per-task requests.
func (n *Node) EnableResources(capacity, mapReq, reduceReq Resources) error {
	if capacity.MemMB <= 0 || capacity.VCores <= 0 {
		return fmt.Errorf("cluster: node %d: capacity must be positive", n.ID)
	}
	if mapReq.MemMB <= 0 || mapReq.VCores <= 0 || reduceReq.MemMB <= 0 || reduceReq.VCores <= 0 {
		return fmt.Errorf("cluster: node %d: container requests must be positive", n.ID)
	}
	if n.usedMap != 0 || n.usedReduce != 0 {
		return fmt.Errorf("cluster: node %d: cannot switch modes with tasks running", n.ID)
	}
	bm, br := n.freeBefore()
	n.resourceMode = true
	n.capacity = capacity
	n.mapReq = mapReq
	n.reduceReq = reduceReq
	n.noteChange(bm, br)
	return nil
}

// ResourceMode reports whether the node uses the container model.
func (n *Node) ResourceMode() bool { return n.resourceMode }

// Used returns the consumed resources (container mode only).
func (n *Node) Used() Resources { return n.used }

// FreeMapSlots returns how many more map tasks the node can start right
// now (0 when offline or blacklisted). In container mode this is the
// resource headroom measured in map containers.
func (n *Node) FreeMapSlots() int {
	if n.offline || n.blacklisted {
		return 0
	}
	if n.resourceMode {
		return headroom(n.used, n.mapReq, n.capacity)
	}
	return n.MapSlots - n.usedMap
}

// FreeReduceSlots returns how many more reduce tasks the node can start
// right now (0 when offline or blacklisted).
func (n *Node) FreeReduceSlots() int {
	if n.offline || n.blacklisted {
		return 0
	}
	if n.resourceMode {
		return headroom(n.used, n.reduceReq, n.capacity)
	}
	return n.ReduceSlots - n.usedReduce
}

// UsedMapSlots returns the number of occupied map slots.
func (n *Node) UsedMapSlots() int { return n.usedMap }

// UsedReduceSlots returns the number of occupied reduce slots.
func (n *Node) UsedReduceSlots() int { return n.usedReduce }

// AcquireMap occupies a map slot (or container); it fails when none fits.
func (n *Node) AcquireMap() error {
	bm, br := n.freeBefore()
	if n.resourceMode {
		if !fits(n.used, n.mapReq, n.capacity) {
			return fmt.Errorf("cluster: node %d has no room for a map container", n.ID)
		}
		n.used.MemMB += n.mapReq.MemMB
		n.used.VCores += n.mapReq.VCores
		n.usedMap++
		n.noteChange(bm, br)
		return nil
	}
	if n.usedMap >= n.MapSlots {
		return fmt.Errorf("cluster: node %d has no free map slot", n.ID)
	}
	n.usedMap++
	n.noteChange(bm, br)
	return nil
}

// ReleaseMap frees a map slot; releasing an unheld slot panics (it is
// always an engine bug).
func (n *Node) ReleaseMap() {
	if n.usedMap <= 0 {
		panic(fmt.Sprintf("cluster: node %d released an unheld map slot", n.ID))
	}
	bm, br := n.freeBefore()
	n.usedMap--
	if n.resourceMode {
		n.used.MemMB -= n.mapReq.MemMB
		n.used.VCores -= n.mapReq.VCores
	}
	n.noteChange(bm, br)
}

// AcquireReduce occupies a reduce slot (or container).
func (n *Node) AcquireReduce() error {
	bm, br := n.freeBefore()
	if n.resourceMode {
		if !fits(n.used, n.reduceReq, n.capacity) {
			return fmt.Errorf("cluster: node %d has no room for a reduce container", n.ID)
		}
		n.used.MemMB += n.reduceReq.MemMB
		n.used.VCores += n.reduceReq.VCores
		n.usedReduce++
		n.noteChange(bm, br)
		return nil
	}
	if n.usedReduce >= n.ReduceSlots {
		return fmt.Errorf("cluster: node %d has no free reduce slot", n.ID)
	}
	n.usedReduce++
	n.noteChange(bm, br)
	return nil
}

// ReleaseReduce frees a reduce slot (or container).
func (n *Node) ReleaseReduce() {
	if n.usedReduce <= 0 {
		panic(fmt.Sprintf("cluster: node %d released an unheld reduce slot", n.ID))
	}
	bm, br := n.freeBefore()
	n.usedReduce--
	if n.resourceMode {
		n.used.MemMB -= n.reduceReq.MemMB
		n.used.VCores -= n.reduceReq.VCores
	}
	n.noteChange(bm, br)
}

// availState tracks one slot kind's availability set incrementally: a
// monotonically increasing version (bumped on every membership change, so
// downstream caches get an O(1) identity check), optional per-class member
// counts, and a lazily rebuilt ID-ordered snapshot slice. The cache
// slice is handed out to readers and stays immutable once published:
// only the //lint:publish rebuild/recount sites below may write here.
//
//lint:immutable-after-publish
type availState struct {
	version uint64
	dirty   bool
	cache   []topology.NodeID

	classes *topology.Classes
	counts  []int // per-class free-node counts; nil until SetClasses
}

// flip records that node id entered (free=true) or left the availability
// set. O(1): the snapshot slice is only rebuilt when next requested.
//
//lint:publish availState
func (a *availState) flip(id topology.NodeID, free bool) {
	a.version++
	a.dirty = true
	if a.counts != nil {
		if free {
			a.counts[a.classes.Of(id)]++
		} else {
			a.counts[a.classes.Of(id)]--
		}
	}
}

// snapshot returns the ID-ordered availability slice, rebuilding it only
// after membership changed. A fresh slice is allocated per rebuild so
// snapshots held by earlier scheduler contexts stay immutable.
//
//lint:publish availState
func (a *availState) snapshot(nodes []*Node, free func(*Node) bool) []topology.NodeID {
	if a.cache == nil || a.dirty {
		out := make([]topology.NodeID, 0, len(nodes))
		for _, n := range nodes {
			if free(n) {
				out = append(out, n.ID)
			}
		}
		a.cache = out
		a.dirty = false
	}
	return a.cache
}

// setClasses installs (or clears) the class structure and recounts from
// scratch; membership itself is unchanged but the version bumps so caches
// that captured counts re-read them.
//
//lint:publish availState
func (a *availState) setClasses(c *topology.Classes, nodes []*Node, free func(*Node) bool) {
	a.classes = c
	a.counts = nil
	a.version++
	if c == nil {
		return
	}
	a.counts = make([]int, c.Num())
	for _, n := range nodes {
		if free(n) {
			a.counts[c.Of(n.ID)]++
		}
	}
}

// State is the slot state of the whole cluster.
type State struct {
	nodes       []*Node
	availMap    availState
	availReduce availState
}

// New creates a cluster of n nodes with uniform slot counts.
func New(n, mapSlots, reduceSlots int) (*State, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: %d nodes, need >= 1", n)
	}
	if mapSlots < 0 || reduceSlots < 0 {
		return nil, fmt.Errorf("cluster: negative slot counts")
	}
	// Versions start at 1: consumers use 0 as "no identity known".
	s := &State{availMap: availState{version: 1}, availReduce: availState{version: 1}}
	s.nodes = make([]*Node, n)
	for i := range s.nodes {
		s.nodes[i] = &Node{ID: topology.NodeID(i), MapSlots: mapSlots, ReduceSlots: reduceSlots, st: s}
	}
	return s, nil
}

// Size returns the node count.
func (s *State) Size() int { return len(s.nodes) }

// Node returns the node with the given ID.
func (s *State) Node(id topology.NodeID) *Node { return s.nodes[id] }

func freeMap(n *Node) bool    { return n.FreeMapSlots() > 0 }
func freeReduce(n *Node) bool { return n.FreeReduceSlots() > 0 }

// SetClasses installs the topology's distance-class structure so the
// availability sets also maintain per-class free-node counts (the O(1)
// inputs of the class-collapsed Formula 4/5 sums). Pass nil to clear.
func (s *State) SetClasses(c *topology.Classes) {
	s.availMap.setClasses(c, s.nodes, freeMap)
	s.availReduce.setClasses(c, s.nodes, freeReduce)
}

// AvailMapNodes returns the IDs of nodes with at least one free map slot
// (the N_m set of Formula 4), in ID order for determinism. The slice is
// cached between membership changes; callers must not mutate it.
func (s *State) AvailMapNodes() []topology.NodeID {
	return s.availMap.snapshot(s.nodes, freeMap)
}

// AvailReduceNodes returns the IDs of nodes with at least one free reduce
// slot (the N_r set of Formula 5).
func (s *State) AvailReduceNodes() []topology.NodeID {
	return s.availReduce.snapshot(s.nodes, freeReduce)
}

// AvailMap returns the map-slot availability set plus its per-class counts
// (nil before SetClasses) and identity version. The counts are a copy:
// flip mutates the live array in place, and snapshots must stay immutable.
func (s *State) AvailMap() (nodes []topology.NodeID, counts []int, version uint64) {
	return s.availMap.snapshot(s.nodes, freeMap),
		append([]int(nil), s.availMap.counts...), s.availMap.version
}

// AvailReduce returns the reduce-slot availability set plus its per-class
// counts (nil before SetClasses) and identity version.
func (s *State) AvailReduce() (nodes []topology.NodeID, counts []int, version uint64) {
	return s.availReduce.snapshot(s.nodes, freeReduce),
		append([]int(nil), s.availReduce.counts...), s.availReduce.version
}

// Versions returns both availability sets' identity versions without
// materializing the snapshots — the O(1) consistency probe the placement
// service's torn-read assertion uses.
func (s *State) Versions() (mapVersion, reduceVersion uint64) {
	return s.availMap.version, s.availReduce.version
}

// UsedSlots returns the cluster-wide occupied map and reduce slot counts.
func (s *State) UsedSlots() (maps, reduces int) {
	for _, n := range s.nodes {
		maps += n.usedMap
		reduces += n.usedReduce
	}
	return maps, reduces
}

// TotalSlots returns the cluster-wide slot capacities. In container mode
// the capacity is expressed as how many containers of each kind would fit
// an idle cluster.
func (s *State) TotalSlots() (maps, reduces int) {
	for _, n := range s.nodes {
		if n.resourceMode {
			maps += headroom(Resources{}, n.mapReq, n.capacity)
			reduces += headroom(Resources{}, n.reduceReq, n.capacity)
			continue
		}
		maps += n.MapSlots
		reduces += n.ReduceSlots
	}
	return maps, reduces
}

// EnableResources switches every node to the container model.
func (s *State) EnableResources(capacity, mapReq, reduceReq Resources) error {
	for _, n := range s.nodes {
		if err := n.EnableResources(capacity, mapReq, reduceReq); err != nil {
			return err
		}
	}
	return nil
}
