// Package analysis provides the theoretical performance analysis the
// paper defers to future work (Section V): closed-form expressions for
// the expected placement cost, the expected number of slot offers a task
// declines before being assigned, and the starvation threshold of the
// P_min gate, all under the offer process the simulator implements.
//
// Model: a task faces candidate placements with costs C_1..C_n (one per
// node with a free slot). Offers arrive from nodes uniformly at random;
// an offer from node i is accepted with probability P_i = M(C_avg, C_i)
// gated by P_min (P_i := 0 when below the threshold). The process is a
// sequence of independent trials with acceptance probability
// p̄ = Σ P_i / n per offer, and conditional on acceptance the chosen node
// is i with probability P_i / Σ P_j.
package analysis

import (
	"fmt"
	"math"

	"mapsched/internal/core"
)

// Acceptance holds the per-node acceptance probabilities of a task under
// a probability model and threshold.
type Acceptance struct {
	Costs []float64 // candidate placement costs C_i
	Avg   float64   // C_avg = mean of Costs
	Probs []float64 // P_i after the P_min gate (0 when below it)
}

// Accept computes the per-node acceptance probabilities for the given
// candidate costs under model m and threshold pmin.
func Accept(costs []float64, m core.ProbabilityModel, pmin float64) (Acceptance, error) {
	if len(costs) == 0 {
		return Acceptance{}, fmt.Errorf("analysis: no candidate costs")
	}
	if m == nil {
		m = core.Exponential{}
	}
	var sum float64
	for _, c := range costs {
		if c < 0 || math.IsNaN(c) {
			return Acceptance{}, fmt.Errorf("analysis: invalid cost %v", c)
		}
		sum += c
	}
	avg := sum / float64(len(costs))
	a := Acceptance{Costs: append([]float64(nil), costs...), Avg: avg}
	a.Probs = make([]float64, len(costs))
	for i, c := range costs {
		p := m.Prob(avg, c)
		if p < pmin {
			p = 0
		}
		a.Probs[i] = p
	}
	return a, nil
}

// MeanAcceptance returns p̄ = Σ P_i / n: the per-offer acceptance
// probability of the uniform offer process.
func (a Acceptance) MeanAcceptance() float64 {
	var s float64
	for _, p := range a.Probs {
		s += p
	}
	return s / float64(len(a.Probs))
}

// ExpectedOffers returns the expected number of offers until assignment,
// n / Σ P_i (geometric with success probability p̄). It is +Inf when every
// candidate is gated away — the starvation regime the paper's P_min
// tuning probes.
func (a Acceptance) ExpectedOffers() float64 {
	pbar := a.MeanAcceptance()
	if pbar <= 0 {
		return math.Inf(1)
	}
	return 1 / pbar
}

// ExpectedDelay converts ExpectedOffers into time given the mean
// inter-offer interval (heartbeat period / number of offering slots).
func (a Acceptance) ExpectedDelay(offerInterval float64) float64 {
	return a.ExpectedOffers() * offerInterval
}

// ExpectedCost returns E[C | assigned] = Σ P_i·C_i / Σ P_i: the mean
// transmission cost of the placement the probabilistic rule converges to.
// It is NaN when the task starves.
func (a Acceptance) ExpectedCost() float64 {
	var num, den float64
	for i, p := range a.Probs {
		num += p * a.Costs[i]
		den += p
	}
	if den == 0 {
		return math.NaN()
	}
	return num / den
}

// GreedyCost returns min_i C_i — the cost an (unrealizable) oracle that
// always waits for the best node achieves.
func (a Acceptance) GreedyCost() float64 {
	best := math.Inf(1)
	for _, c := range a.Costs {
		if c < best {
			best = c
		}
	}
	return best
}

// RandomCost returns C_avg — the cost of assigning uniformly at random
// (the fully eager policy).
func (a Acceptance) RandomCost() float64 { return a.Avg }

// Saving returns the fractional expected-cost reduction of the
// probabilistic rule relative to uniform random assignment:
// (C_avg − E[C]) / C_avg. Zero average cost yields 0.
func (a Acceptance) Saving() float64 {
	if a.Avg == 0 {
		return 0
	}
	ec := a.ExpectedCost()
	if math.IsNaN(ec) {
		return 0
	}
	return (a.Avg - ec) / a.Avg
}

// StarvationPmin returns the largest P_min under which the task can still
// be assigned at all: max_i M(C_avg, C_i). Thresholds above it gate every
// candidate away. For a uniform cost vector under the exponential model
// this is 1 − e^{-1} ≈ 0.632, matching the breakpoint the P_min sweep
// experiment observes.
func StarvationPmin(costs []float64, m core.ProbabilityModel) (float64, error) {
	a, err := Accept(costs, m, 0)
	if err != nil {
		return 0, err
	}
	var best float64
	for _, p := range a.Probs {
		if p > best {
			best = p
		}
	}
	return best, nil
}

// TradeoffPoint is one (P_min → outcome) sample of the cost/delay
// trade-off curve.
type TradeoffPoint struct {
	Pmin           float64
	ExpectedCost   float64 // NaN when starved
	ExpectedOffers float64 // +Inf when starved
	Saving         float64 // vs uniform random assignment
}

// TradeoffCurve evaluates the probabilistic rule across thresholds: as
// P_min rises the expected cost falls (bad nodes are gated away) while
// the expected assignment delay rises — the balance Section II-C argues
// for.
func TradeoffCurve(costs []float64, m core.ProbabilityModel, pmins []float64) ([]TradeoffPoint, error) {
	out := make([]TradeoffPoint, 0, len(pmins))
	for _, pm := range pmins {
		a, err := Accept(costs, m, pm)
		if err != nil {
			return nil, err
		}
		out = append(out, TradeoffPoint{
			Pmin:           pm,
			ExpectedCost:   a.ExpectedCost(),
			ExpectedOffers: a.ExpectedOffers(),
			Saving:         a.Saving(),
		})
	}
	return out, nil
}
