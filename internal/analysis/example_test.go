package analysis_test

import (
	"fmt"

	"mapsched/internal/analysis"
	"mapsched/internal/core"
)

// A task with one data-local candidate and three remote ones: the
// probabilistic rule lands it on the local node most of the time, cutting
// the expected transmission cost well below random placement at a modest
// assignment delay.
func ExampleAccept() {
	costs := []float64{0, 200, 200, 200}
	a, err := analysis.Accept(costs, core.Exponential{}, 0.4)
	if err != nil {
		panic(err)
	}
	fmt.Printf("expected cost:   %.1f (random: %.1f)\n", a.ExpectedCost(), a.RandomCost())
	fmt.Printf("expected offers: %.2f\n", a.ExpectedOffers())
	fmt.Printf("saving:          %.0f%%\n", 100*a.Saving())
	// Output:
	// expected cost:   122.6 (random: 150.0)
	// expected offers: 1.55
	// saving:          18%
}
