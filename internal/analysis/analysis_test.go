package analysis

import (
	"math"
	"testing"
	"testing/quick"

	"mapsched/internal/core"
	"mapsched/internal/sim"
)

func TestAcceptValidation(t *testing.T) {
	if _, err := Accept(nil, core.Exponential{}, 0.4); err == nil {
		t.Error("empty costs accepted")
	}
	if _, err := Accept([]float64{1, -2}, core.Exponential{}, 0.4); err == nil {
		t.Error("negative cost accepted")
	}
	if _, err := Accept([]float64{1, math.NaN()}, core.Exponential{}, 0.4); err == nil {
		t.Error("NaN cost accepted")
	}
	// nil model defaults to the paper's exponential model.
	a, err := Accept([]float64{1, 1}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - math.Exp(-1)
	if math.Abs(a.Probs[0]-want) > 1e-12 {
		t.Fatalf("default model P = %v, want %v", a.Probs[0], want)
	}
}

func TestUniformCostsBreakpoint(t *testing.T) {
	// For uniform costs, every P_i = 1 - e^{-1} ≈ 0.632: the paper's
	// feasible P_min range ends there, as the sweep experiment observes.
	costs := []float64{100, 100, 100, 100}
	thr, err := StarvationPmin(costs, core.Exponential{})
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - math.Exp(-1)
	if math.Abs(thr-want) > 1e-12 {
		t.Fatalf("starvation threshold = %v, want %v", thr, want)
	}
	// Below the threshold the task assigns; above it starves.
	below, err := Accept(costs, core.Exponential{}, thr-0.01)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(below.ExpectedOffers(), 1) {
		t.Fatal("starved below the threshold")
	}
	above, err := Accept(costs, core.Exponential{}, thr+0.01)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(above.ExpectedOffers(), 1) {
		t.Fatal("did not starve above the threshold")
	}
	if !math.IsNaN(above.ExpectedCost()) {
		t.Fatal("starved task has a finite expected cost")
	}
	if above.Saving() != 0 {
		t.Fatal("starved task reports nonzero saving")
	}
}

func TestLocalCandidateDominates(t *testing.T) {
	// A zero-cost (data-local) candidate has P = 1 and pulls the expected
	// cost below the average.
	a, err := Accept([]float64{0, 200, 200, 200}, core.Exponential{}, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if a.Probs[0] != 1 {
		t.Fatalf("local P = %v, want 1", a.Probs[0])
	}
	if ec := a.ExpectedCost(); ec >= a.RandomCost() {
		t.Fatalf("expected cost %v not below random %v", ec, a.RandomCost())
	}
	if a.Saving() <= 0 {
		t.Fatalf("saving %v, want positive", a.Saving())
	}
	if g := a.GreedyCost(); g != 0 {
		t.Fatalf("greedy cost %v, want 0", g)
	}
}

func TestExpectedCostBounds(t *testing.T) {
	// Property: min ≤ E[C] ≤ mean for any cost vector that does not starve.
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		costs := make([]float64, 0, len(raw))
		for _, r := range raw {
			costs = append(costs, float64(r)+1)
		}
		a, err := Accept(costs, core.Exponential{}, 0)
		if err != nil {
			return false
		}
		ec := a.ExpectedCost()
		return ec >= a.GreedyCost()-1e-9 && ec <= a.RandomCost()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTradeoffMonotonicity(t *testing.T) {
	// Raising P_min can only gate away worse-than-threshold nodes: the
	// expected cost is non-increasing and the expected offer count
	// non-decreasing along the curve (until starvation).
	costs := []float64{10, 50, 100, 200, 400, 800}
	pmins := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6}
	curve, err := TradeoffCurve(costs, core.Exponential{}, pmins)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(curve); i++ {
		prev, cur := curve[i-1], curve[i]
		if math.IsInf(cur.ExpectedOffers, 1) {
			break // starved tail
		}
		if cur.ExpectedCost > prev.ExpectedCost+1e-9 {
			t.Fatalf("expected cost rose from %v to %v at pmin %v",
				prev.ExpectedCost, cur.ExpectedCost, cur.Pmin)
		}
		if cur.ExpectedOffers < prev.ExpectedOffers-1e-9 {
			t.Fatalf("expected offers fell from %v to %v at pmin %v",
				prev.ExpectedOffers, cur.ExpectedOffers, cur.Pmin)
		}
	}
}

// TestMonteCarloValidation simulates the offer process and compares the
// empirical expected cost and offer count against the closed forms.
func TestMonteCarloValidation(t *testing.T) {
	costs := []float64{0, 30, 60, 120, 240, 480, 480, 960}
	for _, pmin := range []float64{0, 0.3, 0.5} {
		a, err := Accept(costs, core.Exponential{}, pmin)
		if err != nil {
			t.Fatal(err)
		}
		rng := sim.NewRNG(42)
		const trials = 200000
		var sumCost, sumOffers float64
		for trial := 0; trial < trials; trial++ {
			offers := 0
			for {
				offers++
				i := rng.Intn(len(costs))
				if rng.Bernoulli(a.Probs[i]) {
					sumCost += costs[i]
					break
				}
				if offers > 10000 {
					t.Fatal("Monte Carlo starved unexpectedly")
				}
			}
			sumOffers += float64(offers)
		}
		gotCost := sumCost / trials
		gotOffers := sumOffers / trials
		if math.Abs(gotCost-a.ExpectedCost()) > 0.01*a.RandomCost()+1 {
			t.Fatalf("pmin %v: Monte Carlo cost %v vs closed form %v", pmin, gotCost, a.ExpectedCost())
		}
		if math.Abs(gotOffers-a.ExpectedOffers())/a.ExpectedOffers() > 0.02 {
			t.Fatalf("pmin %v: Monte Carlo offers %v vs closed form %v", pmin, gotOffers, a.ExpectedOffers())
		}
	}
}

func TestExpectedDelayScalesWithInterval(t *testing.T) {
	a, err := Accept([]float64{10, 20, 30}, core.Exponential{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d1, d2 := a.ExpectedDelay(1), a.ExpectedDelay(3); math.Abs(d2-3*d1) > 1e-12 {
		t.Fatalf("delay not linear in interval: %v vs %v", d1, d2)
	}
}

func TestProbabilityModelsContract(t *testing.T) {
	for _, m := range core.Models() {
		if err := core.ValidateModel(m); err != nil {
			t.Errorf("%s: %v", m.Name(), err)
		}
		if m.Name() == "" {
			t.Error("unnamed model")
		}
	}
}

func TestModelOrderingAtAverage(t *testing.T) {
	// At C = C_avg the models span the spectrum from permissive to harsh:
	// step (1) ≥ linear (1) ≥ exponential (0.63) ≥ rational (0.5).
	avg, cost := 100.0, 100.0
	step := core.Step{}.Prob(avg, cost)
	lin := core.Linear{}.Prob(avg, cost)
	exp := core.Exponential{}.Prob(avg, cost)
	rat := core.Rational{K: 1}.Prob(avg, cost)
	if !(step >= lin && lin >= exp && exp >= rat) {
		t.Fatalf("ordering broken: step=%v linear=%v exp=%v rational=%v", step, lin, exp, rat)
	}
	if math.Abs(exp-(1-math.Exp(-1))) > 1e-12 {
		t.Fatalf("exponential at average = %v", exp)
	}
	if math.Abs(rat-0.5) > 1e-12 {
		t.Fatalf("rational at average = %v", rat)
	}
}

func TestRationalDefaultK(t *testing.T) {
	r := core.Rational{}
	if r.Prob(100, 100) != 0.5 {
		t.Fatal("zero K did not default to 1")
	}
	if (core.Rational{K: 2}).Name() == (core.Rational{K: 1}).Name() {
		t.Fatal("K not reflected in name")
	}
}
