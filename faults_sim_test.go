package mapsched

import (
	"bytes"
	"strings"
	"testing"
)

// TestFaultyEventLogDeterministic replays a run under a combined fault
// plan (crash, slowdown, link degradation, replica loss, transient task
// failures) and requires the JSONL event log to be byte-identical across
// runs — the fault subsystem draws only from the seeded RNG.
func TestFaultyEventLogDeterministic(t *testing.T) {
	plan, err := ParseFaultPlan("crash:3@12;slow:5@5+40*3;link:7@4+30*0.2;replica:9@8;taskfail:0.05")
	if err != nil {
		t.Fatal(err)
	}
	record := func() string {
		var buf bytes.Buffer
		log := NewJSONLSink(&buf)
		sim, err := New(smallConfig(), Batch(Terasort), SchedulerProbabilistic,
			WithSeed(7), WithScale(30), WithReplication(3),
			WithFaultPlan(plan), WithObserver(log))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		if err := log.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := record(), record()
	if a != b {
		t.Fatal("same seed and fault plan produced different event logs")
	}
	if a == "" {
		t.Fatal("empty event log")
	}
	// Every injected fault class must leave its typed trace in the log.
	for _, evt := range []string{
		`"node_fail"`, `"failure_detected"`, `"node_slow"`,
		`"link_degrade"`, `"replica_loss"`, `"attempt_fail"`,
	} {
		if !strings.Contains(a, evt) {
			t.Errorf("event log missing %s events", evt)
		}
	}
}

// TestJobsTerminateUnderEveryFaultType is the liveness invariant of the
// recovery machinery: under each fault type — alone and combined — every
// job must terminate, either completed or explicitly failed. A hung
// shuffle, an un-reverted task, or a lost slot shows up here as an
// unfinished job.
func TestJobsTerminateUnderEveryFaultType(t *testing.T) {
	cases := []struct {
		name        string
		spec        string
		replication int
	}{
		{"crash", "crash:3@10", 3},
		{"double_crash", "crash:3@10;crash:8@25", 3},
		{"slowdown", "slow:5@5+40*4", 2},
		{"permanent_slowdown", "slow:5@5*3", 2},
		{"link_degrade", "link:7@5+30*0.1", 2},
		{"link_severed", "link:7@5+30*0", 2},
		{"replica_loss", "replica:9@5", 3},
		{"replica_loss_fatal", "replica:9@5;replica:4@6", 1},
		{"taskfail", "taskfail:0.1", 2},
		{"taskfail_exhausting", "taskfail:0.6;attempts:2", 2},
		{"combined", "crash:3@10;slow:5@5+40*4;link:7@5+30*0.2;replica:9@8;taskfail:0.05", 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plan, err := ParseFaultPlan(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			res, err := runSim(smallConfig(), Batch(Wordcount), SchedulerProbabilistic,
				WithSeed(3), WithScale(30), WithReplication(tc.replication),
				WithFaultPlan(plan))
			if err != nil {
				t.Fatal(err)
			}
			if res.Unfinished != 0 {
				t.Fatalf("%d jobs neither completed nor failed", res.Unfinished)
			}
			for _, j := range res.Jobs {
				if !j.Finished() && !j.Failed {
					t.Fatalf("job %s terminated in limbo: %+v", j.Name, j)
				}
				if j.Finished() && j.Failed {
					t.Fatalf("job %s both finished and failed: %+v", j.Name, j)
				}
			}
			if strings.HasPrefix(tc.name, "replica_loss_fatal") && res.FailedJobs == 0 {
				t.Fatal("losing the only replicas should fail at least one job")
			}
			if strings.HasPrefix(tc.name, "taskfail_exhausting") && res.FailedJobs == 0 {
				t.Fatal("exhausting the attempt cap should fail at least one job")
			}
		})
	}
}

// TestEmptyFaultPlanIsIdentity: installing a zero plan must not perturb
// the simulation relative to not installing one at all.
func TestEmptyFaultPlanIsIdentity(t *testing.T) {
	record := func(opts ...Option) string {
		var buf bytes.Buffer
		log := NewJSONLSink(&buf)
		opts = append(opts, WithSeed(5), WithScale(30), WithObserver(log))
		sim, err := New(smallConfig(), Batch(Grep), SchedulerProbabilistic, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		if err := log.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if record() != record(WithFaultPlan(FaultPlan{})) {
		t.Fatal("empty fault plan changed the event log")
	}
}
