package mapsched

import (
	"errors"
	"testing"
)

// TestOptionDomains walks every With* option's rejection domain: out-of-
// domain values make New fail with an error wrapping ErrInvalidOption,
// and the domain boundaries stay accepted.
func TestOptionDomains(t *testing.T) {
	cases := []struct {
		name string
		opt  Option
		ok   bool
	}{
		{"pmin_negative", WithPmin(-0.01), false},
		{"pmin_above_one", WithPmin(1.01), false},
		{"pmin_zero", WithPmin(0), true},
		{"pmin_one", WithPmin(1), true},
		{"scale_zero", WithScale(0), false},
		{"scale_negative", WithScale(-3), false},
		{"scale_one", WithScale(1), true},
		{"replication_zero", WithReplication(0), false},
		{"replication_negative", WithReplication(-1), false},
		{"replication_one", WithReplication(1), true},
		{"cross_traffic_negative", WithCrossTraffic(-1), false},
		{"cross_traffic_zero", WithCrossTraffic(0), true},
		{"storage_subset_negative", WithStorageSubset(-1), false},
		{"storage_subset_zero", WithStorageSubset(0), true},
		{"heartbeat_expiry_negative", WithHeartbeatExpiry(-1), false},
		{"heartbeat_expiry_zero", WithHeartbeatExpiry(0), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := buildOptions([]Option{tc.opt})
			if tc.ok {
				if err != nil {
					t.Fatalf("boundary value rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatal("out-of-domain value accepted")
			}
			if !errors.Is(err, ErrInvalidOption) {
				t.Fatalf("error %v does not wrap ErrInvalidOption", err)
			}
		})
	}
}

// TestNewRejectsInvalidOptions checks the typed error surfaces through
// the public constructors, not just the option builder.
func TestNewRejectsInvalidOptions(t *testing.T) {
	if _, err := New(smallConfig(), Batch(Grep), SchedulerFair, WithPmin(2)); !errors.Is(err, ErrInvalidOption) {
		t.Fatalf("New error = %v, want ErrInvalidOption", err)
	}
	if _, err := NewPlacementService(smallConfig(), Batch(Grep), WithScale(0)); !errors.Is(err, ErrInvalidOption) {
		t.Fatalf("NewPlacementService error = %v, want ErrInvalidOption", err)
	}
	if _, err := Replay(smallConfig(), Batch(Grep), nil, WithReplication(0)); !errors.Is(err, ErrInvalidOption) {
		t.Fatalf("Replay error = %v, want ErrInvalidOption", err)
	}
}
