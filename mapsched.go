// Package mapsched is a simulation library reproducing "Probabilistic
// Network-Aware Task Placement for MapReduce Scheduling" (Shen, Sarker,
// Yu, Deng — IEEE CLUSTER 2016).
//
// It bundles a deterministic discrete-event MapReduce cluster simulator —
// network topology with max-min fair bandwidth sharing, an HDFS-style
// replicated block store, slot-based TaskTrackers with heartbeats — and
// three task-level schedulers: the paper's probabilistic network-aware
// scheduler (Algorithms 1–2), Hadoop's Fair Scheduler with Delay
// Scheduling, and the Coupling Scheduler baseline.
//
// Quick start:
//
//	sim, err := mapsched.New(mapsched.DefaultClusterConfig(),
//	        mapsched.Batch(mapsched.Wordcount),
//	        mapsched.SchedulerProbabilistic, mapsched.WithSeed(1))
//	if err != nil { ... }
//	res, err := sim.Run()
//	if err != nil { ... }
//	fmt.Println(res.JobCompletionCDF().Quantile(0.5))
//
// Attach observers before Run to stream scheduler decisions (with the
// paper's C, C_avg, P breakdown), task lifecycle and network-flow events:
//
//	var buf bytes.Buffer
//	log := mapsched.NewJSONLSink(&buf)
//	sim, _ := mapsched.New(cfg, defs, kind, mapsched.WithObserver(log))
//	res, _ := sim.Run()
//	_ = log.Flush() // buf now holds one JSON event per line
//
// The internal/experiments package (driven by cmd/experiments and the
// root-level benchmarks) regenerates every table and figure of the
// paper's evaluation; see EXPERIMENTS.md.
package mapsched

import (
	"errors"
	"fmt"
	"io"

	"mapsched/internal/core"
	"mapsched/internal/engine"
	"mapsched/internal/experiments"
	"mapsched/internal/faults"
	"mapsched/internal/hdfs"
	"mapsched/internal/obs"
	"mapsched/internal/sched"
	"mapsched/internal/sim"
	"mapsched/internal/trace"
	"mapsched/internal/workload"
)

// SchedulerKind selects one of the three schedulers the paper compares.
type SchedulerKind = experiments.SchedulerKind

// Scheduler kinds.
const (
	SchedulerProbabilistic = experiments.Probabilistic
	SchedulerCoupling      = experiments.Coupling
	SchedulerFair          = experiments.Fair
)

// Kind is a workload application class (Wordcount, Terasort, Grep).
type Kind = workload.Kind

// Workload classes of Table II.
const (
	Wordcount = workload.Wordcount
	Terasort  = workload.Terasort
	Grep      = workload.Grep
)

// JobDef is one Table II row; Result aggregates a run's metrics.
type (
	JobDef        = workload.JobDef
	Result        = engine.Result
	JobResult     = engine.JobResult
	ClusterConfig = engine.Config
)

// Fault-injection re-exports: a FaultPlan scripts node crashes, transient
// slowdowns, link degradations and replica losses, plus the stochastic
// per-attempt failure process and the retry/blacklist policy; see
// WithFaultPlan. The zero FaultPlan injects nothing and runs are
// bit-identical to ones without it.
type (
	FaultPlan        = faults.Plan
	NodeCrash        = faults.NodeCrash
	NodeSlowdown     = faults.NodeSlowdown
	LinkDegradeFault = faults.LinkDegrade
	ReplicaLossFault = faults.ReplicaLoss
)

// ParseFaultPlan parses the command-line fault DSL, e.g.
// "crash:3@60;slow:7@30+120*2.5;link:4@10+40*0.1;taskfail:0.02".
func ParseFaultPlan(spec string) (FaultPlan, error) { return faults.ParseSpec(spec) }

// Open-system re-exports: an ArrivalPlan drives continuous job arrivals
// (Poisson per tenant and/or a scripted trace) into per-tenant queues
// with weighted admission control; see WithArrivals and WithTenants.
type (
	// Tenant declares one workload tenant: admission weight, Poisson
	// arrival rate, job mix and queue capacity.
	Tenant = workload.Tenant
	// TraceArrival scripts one job arrival at a fixed instant.
	TraceArrival = workload.TraceArrival
	// ArrivalPlan bundles the arrival horizon, warm-up window,
	// concurrency cap, preemption switch and scripted trace.
	ArrivalPlan = workload.ArrivalPlan
)

// ParseTenants parses the command-line tenant DSL, e.g.
// "gold:weight=3,rate=0.05;best-effort:rate=0.02,cap=8".
func ParseTenants(spec string) ([]Tenant, error) { return workload.ParseTenants(spec) }

// ParseArrivalPlan parses the command-line arrival-plan DSL, e.g.
// "horizon=600,warmup=60,maxactive=12,preempt=1".
func ParseArrivalPlan(spec string) (ArrivalPlan, error) { return workload.ParseArrivalPlan(spec) }

// CostMode selects hop-count or network-condition distances.
type CostMode = core.Mode

// Cost model modes (Section II-B).
const (
	ModeHops             = core.ModeHops
	ModeNetworkCondition = core.ModeNetworkCondition
)

// DefaultClusterConfig returns the paper's testbed shape: 60 single-rack
// nodes with 4 map and 2 reduce slots each, 3-second heartbeats, and
// hop-count costs.
func DefaultClusterConfig() ClusterConfig { return engine.DefaultConfig() }

// TestbedSetup returns the calibrated experiment environment used to
// regenerate the paper's tables and figures (shared-platform bandwidth,
// network-condition cost mode, background cross-traffic); see DESIGN.md
// for the calibration rationale.
func TestbedSetup() experiments.Setup { return experiments.DefaultSetup() }

// TableII returns all 30 job definitions of the paper's Table II.
func TableII() []JobDef { return workload.TableII() }

// Batch returns the 10-job batch of one application class.
func Batch(k Kind) []JobDef { return workload.Batch(k) }

// options collects New's functional options. Every optional int carries a
// set flag so explicit zero values ("no cross traffic", "no storage
// subset") are expressible and distinguishable from "not specified".
type options struct {
	seed             int64
	pmin             float64
	scale            int
	replication      int
	estimator        core.Estimator
	costMode         core.Mode
	costModeSet      bool
	crossTraffic     int
	crossTrafficSet  bool
	deterministic    bool
	storageSubset    int
	storageSubsetSet bool
	faultPlan        faults.Plan
	faultPlanSet     bool
	hbExpiry         float64
	hbExpirySet      bool
	observers        []obs.Observer
	journal          io.Writer
	journalSet       bool
	arrivalPlan      workload.ArrivalPlan
	arrivalsSet      bool
	tenants          []workload.Tenant
	tenantsSet       bool
}

// Option customizes New, NewPlacementService and Replay.
type Option func(*options)

// ErrInvalidOption is wrapped by every option-domain error New and
// NewPlacementService return, so callers can match the whole class with
// errors.Is.
var ErrInvalidOption = errors.New("invalid option")

// buildOptions applies opts over the defaults and validates every value
// against its domain; violations wrap ErrInvalidOption.
func buildOptions(opts []Option) (options, error) {
	o := options{seed: 1, pmin: 0.4, scale: 6, replication: 2}
	for _, apply := range opts {
		apply(&o)
	}
	switch {
	case o.pmin < 0 || o.pmin > 1:
		return o, fmt.Errorf("mapsched: %w: Pmin %v outside [0,1]", ErrInvalidOption, o.pmin)
	case o.scale < 1:
		return o, fmt.Errorf("mapsched: %w: scale %d must be >= 1", ErrInvalidOption, o.scale)
	case o.replication < 1:
		return o, fmt.Errorf("mapsched: %w: replication %d must be >= 1", ErrInvalidOption, o.replication)
	case o.crossTrafficSet && o.crossTraffic < 0:
		return o, fmt.Errorf("mapsched: %w: negative cross traffic %d", ErrInvalidOption, o.crossTraffic)
	case o.storageSubsetSet && o.storageSubset < 0:
		return o, fmt.Errorf("mapsched: %w: negative storage subset %d", ErrInvalidOption, o.storageSubset)
	case o.hbExpirySet && o.hbExpiry < 0:
		return o, fmt.Errorf("mapsched: %w: negative heartbeat expiry %v", ErrInvalidOption, o.hbExpiry)
	case o.journalSet && o.journal == nil:
		return o, fmt.Errorf("mapsched: %w: nil journal writer", ErrInvalidOption)
	case o.tenantsSet && !o.arrivalsSet:
		return o, fmt.Errorf("mapsched: %w: WithTenants requires WithArrivals", ErrInvalidOption)
	}
	if o.arrivalsSet {
		if err := o.arrivalPlan.Validate(); err != nil {
			return o, fmt.Errorf("mapsched: %w: %v", ErrInvalidOption, err)
		}
		for _, t := range o.tenants {
			if err := t.Validate(); err != nil {
				return o, fmt.Errorf("mapsched: %w: %v", ErrInvalidOption, err)
			}
		}
	}
	return o, nil
}

// workloadOptions derives the workload shaping from the options.
func (o *options) workloadOptions() workload.Options {
	wo := workload.Options{
		Scale:         o.scale,
		Replication:   o.replication,
		SubmitStagger: 1,
	}
	if o.storageSubsetSet && o.storageSubset > 0 {
		wo.Placement = hdfs.Subset{K: o.storageSubset}
	}
	return wo
}

// WithSeed fixes the run's random seed (default 1); identical seeds give
// bit-identical results.
func WithSeed(seed int64) Option { return func(o *options) { o.seed = seed } }

// WithPmin sets the probabilistic scheduler's threshold (default 0.4).
func WithPmin(p float64) Option { return func(o *options) { o.pmin = p } }

// WithScale divides workload sizes and task counts (default 6); 1
// reproduces Table II counts exactly at full cost.
func WithScale(s int) Option { return func(o *options) { o.scale = s } }

// WithReplication sets the HDFS replication factor (default 2).
func WithReplication(r int) Option { return func(o *options) { o.replication = r } }

// WithEstimator overrides the intermediate-data estimator used by the
// probabilistic scheduler (default: the paper's progress-scaled one).
func WithEstimator(e core.Estimator) Option { return func(o *options) { o.estimator = e } }

// WithCostMode selects hop-count or network-condition distances.
func WithCostMode(m CostMode) Option {
	return func(o *options) { o.costMode = m; o.costModeSet = true }
}

// WithCrossTraffic injects persistent background flows between random
// node pairs. An explicit 0 disables cross traffic even when the cluster
// config requests some.
func WithCrossTraffic(n int) Option {
	return func(o *options) { o.crossTraffic = n; o.crossTrafficSet = true }
}

// WithDeterministic replaces the Bernoulli assignment with greedy
// minimum-cost assignment (the Section II-C ablation).
func WithDeterministic() Option { return func(o *options) { o.deterministic = true } }

// WithStorageSubset confines all input-block replicas to the first k
// nodes, modelling NAS/SAN-style storage on a subset of the cluster (the
// scenario the paper's introduction motivates). An explicit 0 restores
// the default whole-cluster placement.
func WithStorageSubset(k int) Option {
	return func(o *options) { o.storageSubset = k; o.storageSubsetSet = true }
}

// WithFaultPlan installs a deterministic fault-injection script: node
// crashes with heartbeat-expiry detection, transient slowdowns, link
// degradations, replica losses and a per-attempt failure probability,
// recovered by task retry and node blacklisting. The plan is validated
// against the cluster inside New. An explicit zero plan clears any plan
// carried by the cluster config.
func WithFaultPlan(p FaultPlan) Option {
	return func(o *options) { o.faultPlan = p; o.faultPlanSet = true }
}

// WithHeartbeatExpiry sets how long after a node stops heartbeating the
// JobTracker declares it dead and starts recovery (default: 10 × the
// heartbeat interval).
func WithHeartbeatExpiry(seconds float64) Option {
	return func(o *options) { o.hbExpiry = seconds; o.hbExpirySet = true }
}

// WithJournal attaches a crash-safe delta journal to a placement
// service: every state delta (Commit, Complete, node health, links,
// replicas) is appended to w as a CRC-protected JSONL record before it
// applies. Together with WriteCheckpoint the journal lets
// RecoverPlacementService rebuild the service after a crash. Only
// NewPlacementService and RecoverPlacementService consume it.
func WithJournal(w io.Writer) Option {
	return func(o *options) { o.journal = w; o.journalSet = true }
}

// WithArrivals switches the run into open-system mode: instead of (or in
// addition to) a fixed batch, jobs arrive continuously following the
// plan's Poisson streams and scripted trace, queue per tenant, and are
// admitted under the weighted policy declared via WithTenants. The
// stream is deterministic in the seed: each tenant draws from its own
// forked RNG, so adding a tenant never shifts another tenant's
// arrivals. With an empty defs slice New runs on arrivals alone.
func WithArrivals(plan ArrivalPlan) Option {
	return func(o *options) { o.arrivalPlan = plan; o.arrivalsSet = true }
}

// WithTenants declares the tenants of an open-system run (requires
// WithArrivals). Arrivals naming tenants not declared here are admitted
// under a default weight-1, unbounded-queue policy.
func WithTenants(tenants ...Tenant) Option {
	return func(o *options) { o.tenants = append(o.tenants, tenants...); o.tenantsSet = true }
}

// WithObserver attaches an event sink at construction time; equivalent to
// calling Simulation.Attach before Run. May be given several times.
func WithObserver(o Observer) Option {
	return func(opts *options) { opts.observers = append(opts.observers, o) }
}

// Trace is a JSON-exportable task timeline of a run.
type Trace = trace.Trace

// Observability re-exports: the event stream types and built-in sinks of
// internal/obs, so observers can be written against the public package.
type (
	// Observer consumes simulation events; see WithObserver and
	// Simulation.Attach.
	Observer = obs.Observer
	// Event is one observation of the stream.
	Event = obs.Event
	// EventType enumerates the event kinds (obs.TaskAssign, ...).
	EventType = obs.Type
	// DecisionInfo is the Formula 1-5 breakdown behind one scheduling
	// decision (C, C_avg, P, P_min, draw outcome).
	DecisionInfo = obs.Decision
	// ObserverFunc adapts a plain function to the Observer interface.
	ObserverFunc = obs.Func
	// JSONLSink streams events as one JSON object per line.
	JSONLSink = obs.JSONL
	// SummarySink folds the stream into counters and histograms.
	SummarySink = obs.Summary
)

// NewJSONLSink returns an event-log sink writing one JSON object per
// event to w. Call Flush after the run to drain the buffer and collect
// the first write error.
func NewJSONLSink(w io.Writer) *JSONLSink { return obs.NewJSONL(w) }

// NewSummarySink returns a streaming-metrics sink (locality hit rate,
// skip rate, queue waits, per-link volume).
func NewSummarySink() *SummarySink { return obs.NewSummary() }

// ReadEventLog parses a log written by a JSONLSink.
func ReadEventLog(r io.Reader) ([]Event, error) { return obs.ReadJSONL(r) }

// Simulation is one configured run: construct with New, optionally
// Attach observers, then Run once and read Result / Trace.
type Simulation struct {
	sim *engine.Simulation
	res *engine.Result
}

// New builds a simulation of the given jobs on a cluster under the chosen
// scheduler. The configuration is validated here, so errors surface
// before any observer or runtime state exists.
func New(cfg ClusterConfig, defs []JobDef, kind SchedulerKind, opts ...Option) (*Simulation, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	if len(defs) == 0 && !o.arrivalsSet {
		return nil, fmt.Errorf("mapsched: no jobs to run")
	}
	cfg.Seed = o.seed
	if o.costModeSet {
		cfg.CostMode = o.costMode
	}
	if o.crossTrafficSet {
		cfg.CrossTraffic = o.crossTraffic
	}
	if o.faultPlanSet {
		cfg.Faults = o.faultPlan
	}
	if o.hbExpirySet {
		cfg.HeartbeatExpiry = o.hbExpiry
	}
	specs, err := workload.Specs(defs, o.workloadOptions())
	if err != nil {
		return nil, err
	}
	if o.arrivalsSet {
		arr, err := workload.BuildArrivals(o.arrivalPlan, o.tenants, o.seed, o.workloadOptions())
		if err != nil {
			return nil, err
		}
		open := engine.OpenSystem{
			MaxActive: o.arrivalPlan.MaxActive,
			Preempt:   o.arrivalPlan.Preempt,
			Warmup:    o.arrivalPlan.Warmup,
		}
		for _, t := range o.tenants {
			open.Tenants = append(open.Tenants, engine.TenantPolicy{
				Name:     t.Name,
				Weight:   t.Weight,
				QueueCap: t.QueueCap,
			})
		}
		open.Arrivals = make([]engine.Arrival, len(arr))
		for i, a := range arr {
			open.Arrivals[i] = engine.Arrival{At: sim.Time(a.At), Tenant: a.Tenant, Spec: a.Spec}
		}
		cfg.Open = open
	}
	var builder sched.Builder
	switch kind {
	case experiments.Probabilistic:
		pc := sched.DefaultProbabilisticConfig()
		pc.Pmin = o.pmin
		pc.Deterministic = o.deterministic
		if o.estimator != nil {
			pc.Estimator = o.estimator
		}
		builder = sched.NewProbabilistic(pc)
	case experiments.Coupling:
		builder = sched.NewCoupling(sched.DefaultCouplingConfig())
	case experiments.Fair:
		builder = sched.NewFairDelay(sched.DefaultFairDelayConfig())
	default:
		return nil, fmt.Errorf("mapsched: unknown scheduler kind %v", kind)
	}
	eng, err := engine.New(cfg, specs, builder)
	if err != nil {
		return nil, err
	}
	s := &Simulation{sim: eng}
	for _, ob := range o.observers {
		if err := s.Attach(ob); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Attach subscribes an observer to the simulation's event stream; it must
// happen before Run. Attached observers receive scheduler decisions,
// task lifecycle and flow events synchronously, in simulation order, and
// never influence the run: results are bit-identical with or without
// observers.
func (s *Simulation) Attach(o Observer) error { return s.sim.Attach(o) }

// Run executes the simulation to completion (or the configured horizon)
// and returns the collected metrics. Run may be called once.
func (s *Simulation) Run() (*Result, error) {
	res, err := s.sim.Run()
	if err != nil {
		return nil, err
	}
	s.res = res
	return res, nil
}

// Result returns the metrics of a completed run, or an error when Run has
// not succeeded yet.
func (s *Simulation) Result() (*Result, error) {
	if s.res == nil {
		return nil, fmt.Errorf("mapsched: Result before a successful Run")
	}
	return s.res, nil
}

// Trace returns the task timeline of the simulation; call it after Run.
func (s *Simulation) Trace() *Trace { return s.sim.Trace() }
