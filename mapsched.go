// Package mapsched is a simulation library reproducing "Probabilistic
// Network-Aware Task Placement for MapReduce Scheduling" (Shen, Sarker,
// Yu, Deng — IEEE CLUSTER 2016).
//
// It bundles a deterministic discrete-event MapReduce cluster simulator —
// network topology with max-min fair bandwidth sharing, an HDFS-style
// replicated block store, slot-based TaskTrackers with heartbeats — and
// three task-level schedulers: the paper's probabilistic network-aware
// scheduler (Algorithms 1–2), Hadoop's Fair Scheduler with Delay
// Scheduling, and the Coupling Scheduler baseline.
//
// Quick start:
//
//	cfg := mapsched.DefaultClusterConfig()
//	res, err := mapsched.Run(cfg, mapsched.Batch(mapsched.Wordcount),
//	        mapsched.SchedulerProbabilistic, mapsched.WithSeed(1))
//	if err != nil { ... }
//	fmt.Println(res.JobCompletionCDF().Quantile(0.5))
//
// The internal/experiments package (driven by cmd/experiments and the
// root-level benchmarks) regenerates every table and figure of the
// paper's evaluation; see EXPERIMENTS.md.
package mapsched

import (
	"fmt"

	"mapsched/internal/core"
	"mapsched/internal/engine"
	"mapsched/internal/experiments"
	"mapsched/internal/hdfs"
	"mapsched/internal/sched"
	"mapsched/internal/trace"
	"mapsched/internal/workload"
)

// SchedulerKind selects one of the three schedulers the paper compares.
type SchedulerKind = experiments.SchedulerKind

// Scheduler kinds.
const (
	SchedulerProbabilistic = experiments.Probabilistic
	SchedulerCoupling      = experiments.Coupling
	SchedulerFair          = experiments.Fair
)

// Kind is a workload application class (Wordcount, Terasort, Grep).
type Kind = workload.Kind

// Workload classes of Table II.
const (
	Wordcount = workload.Wordcount
	Terasort  = workload.Terasort
	Grep      = workload.Grep
)

// JobDef is one Table II row; Result aggregates a run's metrics.
type (
	JobDef        = workload.JobDef
	Result        = engine.Result
	JobResult     = engine.JobResult
	ClusterConfig = engine.Config
)

// CostMode selects hop-count or network-condition distances.
type CostMode = core.Mode

// Cost model modes (Section II-B).
const (
	ModeHops             = core.ModeHops
	ModeNetworkCondition = core.ModeNetworkCondition
)

// DefaultClusterConfig returns the paper's testbed shape: 60 single-rack
// nodes with 4 map and 2 reduce slots each, 3-second heartbeats, and
// hop-count costs.
func DefaultClusterConfig() ClusterConfig { return engine.DefaultConfig() }

// TestbedSetup returns the calibrated experiment environment used to
// regenerate the paper's tables and figures (shared-platform bandwidth,
// network-condition cost mode, background cross-traffic); see DESIGN.md
// for the calibration rationale.
func TestbedSetup() experiments.Setup { return experiments.DefaultSetup() }

// TableII returns all 30 job definitions of the paper's Table II.
func TableII() []JobDef { return workload.TableII() }

// Batch returns the 10-job batch of one application class.
func Batch(k Kind) []JobDef { return workload.Batch(k) }

// options collects Run's functional options.
type options struct {
	seed          int64
	pmin          float64
	scale         int
	replication   int
	estimator     core.Estimator
	costMode      core.Mode
	costModeSet   bool
	crossTraffic  int
	deterministic bool
	storageSubset int
}

// Option customizes Run.
type Option func(*options)

// WithSeed fixes the run's random seed (default 1); identical seeds give
// bit-identical results.
func WithSeed(seed int64) Option { return func(o *options) { o.seed = seed } }

// WithPmin sets the probabilistic scheduler's threshold (default 0.4).
func WithPmin(p float64) Option { return func(o *options) { o.pmin = p } }

// WithScale divides workload sizes and task counts (default 6); 1
// reproduces Table II counts exactly at full cost.
func WithScale(s int) Option { return func(o *options) { o.scale = s } }

// WithReplication sets the HDFS replication factor (default 2).
func WithReplication(r int) Option { return func(o *options) { o.replication = r } }

// WithEstimator overrides the intermediate-data estimator used by the
// probabilistic scheduler (default: the paper's progress-scaled one).
func WithEstimator(e core.Estimator) Option { return func(o *options) { o.estimator = e } }

// WithCostMode selects hop-count or network-condition distances.
func WithCostMode(m CostMode) Option {
	return func(o *options) { o.costMode = m; o.costModeSet = true }
}

// WithCrossTraffic injects persistent background flows between random
// node pairs.
func WithCrossTraffic(n int) Option { return func(o *options) { o.crossTraffic = n } }

// WithDeterministic replaces the Bernoulli assignment with greedy
// minimum-cost assignment (the Section II-C ablation).
func WithDeterministic() Option { return func(o *options) { o.deterministic = true } }

// WithStorageSubset confines all input-block replicas to the first k
// nodes, modelling NAS/SAN-style storage on a subset of the cluster (the
// scenario the paper's introduction motivates).
func WithStorageSubset(k int) Option { return func(o *options) { o.storageSubset = k } }

// Trace is a JSON-exportable task timeline of a run.
type Trace = trace.Trace

// Run simulates the given jobs on a cluster under the chosen scheduler
// and returns the collected metrics.
func Run(cfg ClusterConfig, defs []JobDef, kind SchedulerKind, opts ...Option) (*Result, error) {
	res, _, err := RunWithTrace(cfg, defs, kind, opts...)
	return res, err
}

// RunWithTrace is Run plus the task timeline of the simulation.
func RunWithTrace(cfg ClusterConfig, defs []JobDef, kind SchedulerKind, opts ...Option) (*Result, *Trace, error) {
	o := options{seed: 1, pmin: 0.4, scale: 6, replication: 2}
	for _, apply := range opts {
		apply(&o)
	}
	if len(defs) == 0 {
		return nil, nil, fmt.Errorf("mapsched: no jobs to run")
	}
	cfg.Seed = o.seed
	if o.costModeSet {
		cfg.CostMode = o.costMode
	}
	if o.crossTraffic > 0 {
		cfg.CrossTraffic = o.crossTraffic
	}
	wo := workload.Options{
		Scale:         o.scale,
		Replication:   o.replication,
		SubmitStagger: 1,
	}
	if o.storageSubset > 0 {
		wo.Placement = hdfs.Subset{K: o.storageSubset}
	}
	specs, err := workload.Specs(defs, wo)
	if err != nil {
		return nil, nil, err
	}
	var builder sched.Builder
	switch kind {
	case experiments.Probabilistic:
		pc := sched.DefaultProbabilisticConfig()
		pc.Pmin = o.pmin
		pc.Deterministic = o.deterministic
		if o.estimator != nil {
			pc.Estimator = o.estimator
		}
		builder = sched.NewProbabilistic(pc)
	case experiments.Coupling:
		builder = sched.NewCoupling(sched.DefaultCouplingConfig())
	case experiments.Fair:
		builder = sched.NewFairDelay(sched.DefaultFairDelayConfig())
	default:
		return nil, nil, fmt.Errorf("mapsched: unknown scheduler kind %v", kind)
	}
	sim, err := engine.New(cfg, specs, builder)
	if err != nil {
		return nil, nil, err
	}
	res, err := sim.Run()
	if err != nil {
		return nil, nil, err
	}
	return res, sim.Trace(), nil
}
