#!/usr/bin/env sh
# Allocs/op regression guard for the simulation kernel: re-measures
# BenchmarkSimulation_Probabilistic briefly and fails when its allocs/op
# exceeds the budget recorded in BENCH_kernel.json by more than the
# recorded tolerance (20%). Allocation counts are stable across short
# runs — unlike ns/op they are immune to machine load — so a couple of
# iterations are a reliable CI signal that nobody reintroduced per-event
# or per-offer allocations on the hot path.
#
# Usage: sh scripts/alloc_guard.sh   (run from anywhere; cds to the root)

set -e
cd "$(dirname "$0")/.."

BUDGET=$(awk '/"allocs_per_op_budget"/ { gsub(/[^0-9]/, ""); print; exit }' BENCH_kernel.json)
PCT=$(awk '/"max_regression_pct"/ { gsub(/[^0-9]/, ""); print; exit }' BENCH_kernel.json)
if [ -z "$BUDGET" ] || [ -z "$PCT" ]; then
	echo "alloc_guard: no allocs_per_op_budget/max_regression_pct in BENCH_kernel.json" >&2
	exit 1
fi

OUT=$(go test -run '^$' -bench 'BenchmarkSimulation_Probabilistic$' -benchmem -benchtime 2x .)
echo "$OUT"
CUR=$(echo "$OUT" | awk '/^BenchmarkSimulation_Probabilistic/ {
	for (i = 1; i < NF; i++) if ($(i + 1) == "allocs/op") print $i
}')
if [ -z "$CUR" ]; then
	echo "alloc_guard: benchmark produced no allocs/op figure" >&2
	exit 1
fi

LIMIT=$((BUDGET + BUDGET * PCT / 100))
if [ "$CUR" -gt "$LIMIT" ]; then
	echo "alloc_guard: FAIL — $CUR allocs/op exceeds budget $BUDGET by more than $PCT% (limit $LIMIT)" >&2
	echo "alloc_guard: if the increase is intentional, regenerate the budget with scripts/bench.sh" >&2
	exit 1
fi
echo "alloc_guard: OK — $CUR allocs/op within budget $BUDGET (+$PCT% = $LIMIT)"
