#!/usr/bin/env sh
# p99 decision-latency guard for the standalone placement service:
# re-measures BenchmarkPlacement_Decide/readers4 briefly and fails when
# its p99_ns exceeds the budget recorded in BENCH_placement.json by more
# than the recorded tolerance. The tolerance is deliberately wide (200%)
# because wall-clock latency is noisy on loaded CI machines — the guard
# exists to catch order-of-magnitude regressions (a per-decision
# O(nodes) rebuild on the read path lands well past 3x budget), not to
# police single-digit percent drift.
#
# Usage: sh scripts/placement_guard.sh   (run from anywhere; cds to the root)

set -e
cd "$(dirname "$0")/.."

# The key name itself contains digits, so strip digits from the value
# field only — not the whole line.
BUDGET=$(awk -F': ' '/"p99_budget_ns"/ { gsub(/[^0-9]/, "", $2); print $2; exit }' BENCH_placement.json)
PCT=$(awk -F': ' '/"max_regression_pct"/ { gsub(/[^0-9]/, "", $2); print $2; exit }' BENCH_placement.json)
if [ -z "$BUDGET" ] || [ -z "$PCT" ]; then
	echo "placement_guard: no p99_budget_ns/max_regression_pct in BENCH_placement.json" >&2
	exit 1
fi

OUT=$(go test -run '^$' -bench 'BenchmarkPlacement_Decide/readers4$' -benchtime 2000x .)
echo "$OUT"
# p99_ns is a custom metric and may print with a fractional part; strip
# it so the shell integer compare below works.
CUR=$(echo "$OUT" | awk '/^BenchmarkPlacement_Decide/ {
	for (i = 1; i < NF; i++) if ($(i + 1) == "p99_ns") { sub(/\..*$/, "", $i); print $i }
}')
if [ -z "$CUR" ]; then
	echo "placement_guard: benchmark produced no p99_ns figure" >&2
	exit 1
fi

LIMIT=$((BUDGET + BUDGET * PCT / 100))
if [ "$CUR" -gt "$LIMIT" ]; then
	echo "placement_guard: FAIL — p99 ${CUR}ns exceeds budget ${BUDGET}ns by more than $PCT% (limit ${LIMIT}ns)" >&2
	echo "placement_guard: if the slowdown is intentional, regenerate the budget with scripts/bench.sh" >&2
	exit 1
fi
echo "placement_guard: OK — p99 ${CUR}ns within budget ${BUDGET}ns (+$PCT% = ${LIMIT}ns)"
