#!/usr/bin/env sh
# Journal-on delta-latency guard for the placement service: re-measures
# BenchmarkPlacement_Journal/on briefly and fails when its ns/op exceeds
# the budget recorded in BENCH_placement.json by more than the recorded
# tolerance. Like placement_guard.sh, the tolerance is deliberately wide
# (200%): the guard exists to catch structural regressions on the
# journaled delta path (an fsync, a reflection-based encoder, an
# accidental full-state write per delta), not machine-load noise.
#
# Usage: sh scripts/journal_guard.sh   (run from anywhere; cds to the root)

set -e
cd "$(dirname "$0")/.."

BUDGET=$(awk -F': ' '/"journal_on_budget_ns"/ { gsub(/[^0-9]/, "", $2); print $2; exit }' BENCH_placement.json)
PCT=$(awk -F': ' '/"journal_max_regression_pct"/ { gsub(/[^0-9]/, "", $2); print $2; exit }' BENCH_placement.json)
if [ -z "$BUDGET" ] || [ -z "$PCT" ]; then
	echo "journal_guard: no journal_on_budget_ns/journal_max_regression_pct in BENCH_placement.json" >&2
	exit 1
fi

OUT=$(go test -run '^$' -bench 'BenchmarkPlacement_Journal/on$' -benchtime 20000x .)
echo "$OUT"
# ns/op may print with a fractional part; strip it for the integer
# compare below.
CUR=$(echo "$OUT" | awk '/^BenchmarkPlacement_Journal/ {
	for (i = 1; i < NF; i++) if ($(i + 1) == "ns/op") { sub(/\..*$/, "", $i); print $i }
}')
if [ -z "$CUR" ]; then
	echo "journal_guard: benchmark produced no ns/op figure" >&2
	exit 1
fi

LIMIT=$((BUDGET + BUDGET * PCT / 100))
if [ "$CUR" -gt "$LIMIT" ]; then
	echo "journal_guard: FAIL — journal-on delta pair ${CUR}ns exceeds budget ${BUDGET}ns by more than $PCT% (limit ${LIMIT}ns)" >&2
	echo "journal_guard: if the slowdown is intentional, regenerate the budget with scripts/bench.sh" >&2
	exit 1
fi
echo "journal_guard: OK — journal-on delta pair ${CUR}ns within budget ${BUDGET}ns (+$PCT% = ${LIMIT}ns)"
