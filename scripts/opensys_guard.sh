#!/usr/bin/env sh
# Steady-state p99 JCT guard for the open-system workload: re-runs
# BenchmarkSimulation_OpenSystem once and fails when its p99_jct_s
# exceeds the budget recorded in BENCH_opensys.json by more than the
# recorded tolerance. Unlike the latency guards, the figure here is
# simulated seconds — deterministic for a fixed seed — so a trip means
# scheduling or admission behaviour actually changed, not that the CI
# machine was busy. The 25% tolerance only absorbs intentional workload
# retuning (regenerate the budget with scripts/bench.sh in that case).
#
# Usage: sh scripts/opensys_guard.sh   (run from anywhere; cds to the root)

set -e
cd "$(dirname "$0")/.."

BUDGET=$(awk -F': ' '/"p99_jct_budget_s"/ { gsub(/[^0-9]/, "", $2); print $2; exit }' BENCH_opensys.json)
PCT=$(awk -F': ' '/"jct_max_regression_pct"/ { gsub(/[^0-9]/, "", $2); print $2; exit }' BENCH_opensys.json)
if [ -z "$BUDGET" ] || [ -z "$PCT" ]; then
	echo "opensys_guard: no p99_jct_budget_s/jct_max_regression_pct in BENCH_opensys.json" >&2
	exit 1
fi

OUT=$(go test -run '^$' -bench 'BenchmarkSimulation_OpenSystem$' -benchtime 1x .)
echo "$OUT"
# p99_jct_s is a custom metric and may print with a fractional part;
# strip it so the shell integer compare below works.
CUR=$(echo "$OUT" | awk '/^BenchmarkSimulation_OpenSystem/ {
	for (i = 1; i < NF; i++) if ($(i + 1) == "p99_jct_s") { sub(/\..*$/, "", $i); print $i }
}')
if [ -z "$CUR" ]; then
	echo "opensys_guard: benchmark produced no p99_jct_s figure" >&2
	exit 1
fi

LIMIT=$((BUDGET + BUDGET * PCT / 100))
if [ "$CUR" -gt "$LIMIT" ]; then
	echo "opensys_guard: FAIL — steady-state p99 JCT ${CUR}s exceeds budget ${BUDGET}s by more than $PCT% (limit ${LIMIT}s)" >&2
	echo "opensys_guard: the figure is deterministic simulated time; if the change is intentional, regenerate the budget with scripts/bench.sh" >&2
	exit 1
fi
echo "opensys_guard: OK — steady-state p99 JCT ${CUR}s within budget ${BUDGET}s (+$PCT% = ${LIMIT}s)"
