package mapsched

import (
	"bytes"
	"strings"
	"testing"
)

// TestSimulationHandle exercises the New → Attach → Run → Result/Trace
// lifecycle and its error paths.
func TestSimulationHandle(t *testing.T) {
	sim, err := New(smallConfig(), Batch(Grep), SchedulerProbabilistic,
		WithSeed(1), WithScale(30))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Result(); err == nil {
		t.Fatal("Result before Run accepted")
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Unfinished != 0 {
		t.Fatalf("unfinished jobs: %s", res)
	}
	got, err := sim.Result()
	if err != nil || got != res {
		t.Fatalf("Result() = %v, %v; want the Run result", got, err)
	}
	if tr := sim.Trace(); tr == nil || len(tr.Tasks) == 0 {
		t.Fatal("empty trace")
	}
	if _, err := sim.Run(); err == nil {
		t.Fatal("second Run accepted")
	}
	if err := sim.Attach(ObserverFunc(func(Event) {})); err == nil {
		t.Fatal("Attach after Run accepted")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(smallConfig(), nil, SchedulerProbabilistic); err == nil {
		t.Fatal("empty workload accepted")
	}
	if _, err := New(smallConfig(), Batch(Grep), SchedulerKind(99), WithScale(40)); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
	if _, err := New(smallConfig(), Batch(Grep), SchedulerProbabilistic, WithCrossTraffic(-1)); err == nil {
		t.Fatal("negative cross traffic accepted")
	}
	if _, err := New(smallConfig(), Batch(Grep), SchedulerProbabilistic, WithStorageSubset(-1)); err == nil {
		t.Fatal("negative storage subset accepted")
	}
	sim, err := New(smallConfig(), Batch(Grep), SchedulerProbabilistic, WithScale(40))
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Attach(nil); err == nil {
		t.Fatal("nil observer accepted")
	}
}

// TestOptionZeroValues verifies that explicit zero option values override
// the cluster config instead of being silently dropped.
func TestOptionZeroValues(t *testing.T) {
	cfg := smallConfig()
	cfg.CrossTraffic = 50

	count := func(opts ...Option) float64 {
		sum := NewSummarySink()
		opts = append(opts, WithSeed(1), WithScale(40), WithObserver(sum))
		sim, err := New(cfg, Batch(Grep), SchedulerProbabilistic, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		// Persistent cross-traffic flows appear in flows_started but never
		// in flows_finished.
		return sum.Registry().Counter("flows_started").Value() -
			sum.Registry().Counter("flows_finished").Value()
	}
	if open := count(); open != 50 {
		t.Fatalf("config cross traffic: %v persistent flows, want 50", open)
	}
	if open := count(WithCrossTraffic(0)); open != 0 {
		t.Fatalf("WithCrossTraffic(0) left %v persistent flows, want 0", open)
	}
	if open := count(WithCrossTraffic(7)); open != 7 {
		t.Fatalf("WithCrossTraffic(7): %v persistent flows", open)
	}

	// WithStorageSubset(0) must mean "whole cluster", i.e. behave exactly
	// like not passing the option, not like a 0-node subset (which would
	// error out in placement).
	res0, err := runSim(smallConfig(), Batch(Terasort), SchedulerProbabilistic,
		WithSeed(2), WithScale(40), WithStorageSubset(0))
	if err != nil {
		t.Fatalf("WithStorageSubset(0): %v", err)
	}
	resDefault, err := runSim(smallConfig(), Batch(Terasort), SchedulerProbabilistic,
		WithSeed(2), WithScale(40))
	if err != nil {
		t.Fatal(err)
	}
	if res0.Makespan != resDefault.Makespan {
		t.Fatalf("WithStorageSubset(0) changed the run: %v != %v",
			res0.Makespan, resDefault.Makespan)
	}
}

// TestObserverDoesNotChangeResult is the layer's core guarantee: a run
// with observers attached is bit-identical to the same run without them.
func TestObserverDoesNotChangeResult(t *testing.T) {
	for _, kind := range []SchedulerKind{SchedulerProbabilistic, SchedulerCoupling, SchedulerFair} {
		plain, err := runSim(smallConfig(), Batch(Wordcount), kind, WithSeed(7), WithScale(30))
		if err != nil {
			t.Fatal(err)
		}
		events := 0
		observed, err := runSim(smallConfig(), Batch(Wordcount), kind, WithSeed(7), WithScale(30),
			WithObserver(ObserverFunc(func(Event) { events++ })))
		if err != nil {
			t.Fatal(err)
		}
		if events == 0 {
			t.Fatalf("%v: observer saw no events", kind)
		}
		if plain.Makespan != observed.Makespan {
			t.Fatalf("%v: observer changed makespan: %v != %v", kind, plain.Makespan, observed.Makespan)
		}
		pc, oc := plain.JobCompletionCDF(), observed.JobCompletionCDF()
		if pc.Mean() != oc.Mean() || pc.Max() != oc.Max() {
			t.Fatalf("%v: observer changed job completions", kind)
		}
	}
}

// TestEventLogDeterministic asserts the golden-JSONL property: a fixed
// seed reproduces a byte-identical event log, and the log contains the
// full Formula 1-5 breakdown for assignments.
func TestEventLogDeterministic(t *testing.T) {
	record := func() string {
		var buf bytes.Buffer
		log := NewJSONLSink(&buf)
		sim, err := New(smallConfig(), Batch(Terasort), SchedulerProbabilistic,
			WithSeed(11), WithScale(30), WithObserver(log))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		if err := log.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := record(), record()
	if a != b {
		t.Fatal("same seed produced different event logs")
	}
	if a == "" {
		t.Fatal("empty event log")
	}

	events, err := ReadEventLog(strings.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	assigns, withBreakdown := 0, 0
	last := -1.0
	for _, e := range events {
		if e.T < last {
			t.Fatalf("events out of time order: %v after %v", e.T, last)
		}
		last = e.T
		if e.Type != EventType("task_assign") {
			continue
		}
		assigns++
		d := e.Decision
		if d == nil {
			continue
		}
		withBreakdown++
		if d.P < 0 || d.P > 1 || d.PMin != 0.4 || d.Draw == "" {
			t.Fatalf("malformed decision %+v", d)
		}
		if d.Draw != "local" && (d.C <= 0 || d.CAvg <= 0) {
			t.Fatalf("non-local assignment without cost breakdown: %+v", d)
		}
	}
	if assigns == 0 || withBreakdown != assigns {
		t.Fatalf("%d assignments, %d with breakdown; want all", assigns, withBreakdown)
	}

	// The raw log must contain the breakdown fields by name (the schema
	// documented in DESIGN.md §10).
	for _, field := range []string{`"c_avg"`, `"p_min"`, `"draw"`, `"task_offer"`, `"flow_start"`, `"job_finish"`} {
		if !strings.Contains(a, field) {
			t.Fatalf("event log missing %s", field)
		}
	}
}

// TestSummarySinkRates sanity-checks the streaming metrics on a real run.
func TestSummarySinkRates(t *testing.T) {
	sum := NewSummarySink()
	if _, err := runSim(smallConfig(), Batch(Wordcount), SchedulerProbabilistic,
		WithSeed(5), WithScale(30), WithObserver(sum)); err != nil {
		t.Fatal(err)
	}
	reg := sum.Registry()
	if reg.Counter("jobs_submitted").Value() != 10 || reg.Counter("jobs_finished").Value() != 10 {
		t.Fatalf("job counters: %v submitted, %v finished",
			reg.Counter("jobs_submitted").Value(), reg.Counter("jobs_finished").Value())
	}
	if hit := sum.LocalityHitRate("map"); hit <= 0 || hit > 1 {
		t.Fatalf("map locality hit rate %v", hit)
	}
	if rate := sum.SkipRate("map"); rate < 0 || rate >= 1 {
		t.Fatalf("map skip rate %v", rate)
	}
	if reg.Histogram("job_completion_s").N() != 10 {
		t.Fatal("job completion histogram incomplete")
	}
	if reg.Counter("flows_started").Value() == 0 {
		t.Fatal("no flow events observed")
	}
	if !strings.Contains(sum.String(), "locality_hit_map") {
		t.Fatal("summary rendering missing rates")
	}
}
