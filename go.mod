module mapsched

go 1.22.0

toolchain go1.24.0

// schedlint (cmd/schedlint, internal/lint) builds on the go/analysis
// framework. The dependency is pinned and served from an in-tree copy
// (third_party/golang.org/x/tools, the subset vendored by the Go
// toolchain itself), so `go build ./...` works without module downloads.
require golang.org/x/tools v0.28.1-0.20250131145412-98746475647e

replace golang.org/x/tools => ./third_party/golang.org/x/tools
