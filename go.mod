module mapsched

go 1.22
