package mapsched

// Benchmarks of the standalone placement decision service: per-decision
// latency (p50/p99) and throughput at concurrent reader load, with a
// delta-applying writer churning slot state in the background — the
// service's intended operating regime. scripts/bench.sh records the
// numbers in BENCH_placement.json and scripts/placement_guard.sh holds
// the p99 latency budget.

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mapsched/internal/cluster"
	"mapsched/internal/core"
	"mapsched/internal/hdfs"
	"mapsched/internal/job"
	"mapsched/internal/placement"
	"mapsched/internal/sim"
	"mapsched/internal/topology"
	"mapsched/internal/workload"
)

// placementBenchFixture builds an idle decision service over a cluster
// of the given size with four jobs of pending maps.
func placementBenchFixture(b *testing.B, nodes int) (*placement.Service, []*job.Job, *sim.RNG) {
	b.Helper()
	spec := topology.DefaultSpec()
	spec.NodesPerRack = 20
	spec.Racks = nodes / 20
	cl, err := topology.NewCluster(sim.NewEngine(), spec)
	if err != nil {
		b.Fatal(err)
	}
	rng := sim.NewRNG(1)
	store := hdfs.NewStore(cl, rng.Fork("hdfs"))
	slots, err := cluster.New(nodes, 4, 2)
	if err != nil {
		b.Fatal(err)
	}
	svc, err := placement.NewService(placement.Deps{
		Net: cl, Store: store, Rate: cl, Slots: slots, Mode: core.ModeHops,
	})
	if err != nil {
		b.Fatal(err)
	}
	rngJobs := rng.Fork("jobs")
	var jobs []*job.Job
	for i := 1; i <= 4; i++ {
		j, err := job.New(job.ID(i), job.Spec{
			Name:        fmt.Sprintf("placebench-%d", i),
			Profile:     workload.ProfileFor(workload.Wordcount),
			InputBytes:  100 * 128e6,
			BlockSize:   128e6,
			NumReduces:  30,
			Replication: 3,
		}, store, rngJobs)
		if err != nil {
			b.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	return svc, jobs, rng
}

// BenchmarkPlacement_Decide measures one map placement decision against
// a 5000-node service — snapshot, Algorithm 1 scan, gate — from 1, 4
// and 8 concurrent reader sessions while a writer churns slot deltas.
// Reported per sub-benchmark: ns/op (wall clock per decision per
// reader), p50_ns / p99_ns across all decisions, and the aggregate
// decisions_per_sec.
func BenchmarkPlacement_Decide(b *testing.B) {
	const nodes = 5000
	svc, jobs, rng := placementBenchFixture(b, nodes)
	for _, readers := range []int{1, 4, 8} {
		rngs := make([]*sim.RNG, readers)
		for i := range rngs {
			rngs[i] = rng.Fork("reader")
		}
		b.Run(fmt.Sprintf("readers%d", readers), func(b *testing.B) {
			var (
				stop     atomic.Bool
				writerWg sync.WaitGroup
				wg       sync.WaitGroup
				mu       sync.Mutex
				allLats  []time.Duration
			)
			// The writer: slot churn at task-lifecycle rate (one delta
			// pair every 200µs ≈ 10k deltas/s cluster-wide), not a spin
			// loop — each delta invalidates the readers' per-class
			// cost sums, so the churn rate sets how often a decision
			// pays the cold O(classes) rebuild captured in p99.
			stop.Store(false)
			writerWg.Add(1)
			go func() {
				defer writerWg.Done()
				for i := 0; !stop.Load(); i++ {
					n := topology.NodeID(i % nodes)
					if err := svc.ApplySlotAcquire(placement.MapSlot, n); err == nil {
						svc.ApplySlotRelease(placement.MapSlot, n)
					}
					time.Sleep(200 * time.Microsecond)
				}
			}()
			perReader := b.N/readers + 1
			start := time.Now()
			b.ResetTimer()
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					d := placement.NewDecider(svc, placement.DefaultConfig(), rngs[r], nil)
					req := &placement.Request{Slowstart: 0.05}
					lats := make([]time.Duration, 0, perReader)
					for i := 0; i < perReader; i++ {
						t0 := time.Now()
						v := svc.Snapshot()
						req.Now = sim.Time(i)
						req.Jobs = jobs
						req.AvailMap, req.AvailReduce = v.AvailMap, v.AvailReduce
						if _, out := d.PlaceMap(req, topology.NodeID(i%nodes)); out.Torn {
							b.Error("torn decision snapshot")
							return
						}
						lats = append(lats, time.Since(t0))
					}
					mu.Lock()
					allLats = append(allLats, lats...)
					mu.Unlock()
				}(r)
			}
			// Wait for the readers first, then release the writer.
			wg.Wait()
			elapsed := time.Since(start)
			stop.Store(true)
			writerWg.Wait()
			b.StopTimer()

			sort.Slice(allLats, func(i, j int) bool { return allLats[i] < allLats[j] })
			total := len(allLats)
			b.ReportMetric(float64(allLats[total/2]), "p50_ns")
			b.ReportMetric(float64(allLats[total*99/100]), "p99_ns")
			b.ReportMetric(float64(total)/elapsed.Seconds(), "decisions_per_sec")
		})
	}
}

// BenchmarkPlacement_Journal measures the write-ahead journal's cost on
// the delta hot path: one slot acquire+release pair (two deltas) against
// the same 5000-node service, with the journal detached (off) and
// attached (on). The on/off ns/op difference is the journal-on overhead
// BENCH metric; scripts/journal_guard.sh holds the journal-on budget.
func BenchmarkPlacement_Journal(b *testing.B) {
	const nodes = 5000
	for _, mode := range []string{"off", "on"} {
		b.Run(mode, func(b *testing.B) {
			svc, _, _ := placementBenchFixture(b, nodes)
			if mode == "on" {
				if err := svc.StartJournal(io.Discard); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n := topology.NodeID(i % nodes)
				if err := svc.ApplySlotAcquire(placement.MapSlot, n); err != nil {
					b.Fatal(err)
				}
				if err := svc.ApplySlotRelease(placement.MapSlot, n); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
