package mapsched

import (
	"testing"

	"mapsched/internal/core"
)

func smallConfig() ClusterConfig {
	cfg := DefaultClusterConfig()
	cfg.Topology.NodesPerRack = 12
	return cfg
}

// runSim is the tests' shorthand for New followed by Simulation.Run.
func runSim(cfg ClusterConfig, defs []JobDef, kind SchedulerKind, opts ...Option) (*Result, error) {
	s, err := New(cfg, defs, kind, opts...)
	if err != nil {
		return nil, err
	}
	return s.Run()
}

func TestRunQuickstart(t *testing.T) {
	res, err := runSim(smallConfig(), Batch(Wordcount), SchedulerProbabilistic,
		WithSeed(1), WithScale(30))
	if err != nil {
		t.Fatal(err)
	}
	if res.Unfinished != 0 {
		t.Fatalf("unfinished jobs: %s", res)
	}
	if len(res.Jobs) != 10 {
		t.Fatalf("%d jobs", len(res.Jobs))
	}
	if res.JobCompletionCDF().N() != 10 {
		t.Fatal("completion CDF incomplete")
	}
}

func TestRunAllSchedulers(t *testing.T) {
	for _, k := range []SchedulerKind{SchedulerProbabilistic, SchedulerCoupling, SchedulerFair} {
		res, err := runSim(smallConfig(), Batch(Grep), k, WithScale(30))
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if res.Unfinished != 0 {
			t.Fatalf("%v: unfinished", k)
		}
	}
}

func TestRunDeterministicSeeds(t *testing.T) {
	run := func() float64 {
		res, err := runSim(smallConfig(), Batch(Terasort), SchedulerProbabilistic,
			WithSeed(42), WithScale(30))
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	if run() != run() {
		t.Fatal("same seed produced different makespans")
	}
}

func TestRunOptions(t *testing.T) {
	res, err := runSim(smallConfig(), Batch(Wordcount), SchedulerProbabilistic,
		WithScale(40), WithPmin(0.2), WithReplication(3),
		WithEstimator(core.Oracle{}), WithCostMode(ModeNetworkCondition),
		WithCrossTraffic(5), WithDeterministic())
	if err != nil {
		t.Fatal(err)
	}
	if res.Unfinished != 0 {
		t.Fatal("unfinished with options")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := runSim(smallConfig(), nil, SchedulerProbabilistic); err == nil {
		t.Fatal("empty workload accepted")
	}
	if _, err := runSim(smallConfig(), Batch(Grep), SchedulerKind(99), WithScale(40)); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
	bad := DefaultClusterConfig()
	bad.MapSlotsPerNode = 0
	if _, err := runSim(bad, Batch(Grep), SchedulerFair, WithScale(40)); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestTableIIPassthrough(t *testing.T) {
	if len(TableII()) != 30 {
		t.Fatal("TableII passthrough broken")
	}
	if len(Batch(Wordcount)) != 10 {
		t.Fatal("Batch passthrough broken")
	}
	if TestbedSetup().Pmin != 0.4 {
		t.Fatal("TestbedSetup Pmin != 0.4")
	}
}

func TestRunWithStorageSubset(t *testing.T) {
	cfg := smallConfig()
	res, err := runSim(cfg, Batch(Terasort), SchedulerProbabilistic,
		WithSeed(2), WithScale(40), WithStorageSubset(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Unfinished != 0 {
		t.Fatal("unfinished with storage subset")
	}
	// With 12 nodes but storage on 3, a large share of maps cannot be
	// node-local (without the subset the rate is near 100%; with it,
	// seeds land around 55-65%, so 70 leaves slack without losing the
	// signal).
	if res.MapLocality.PercentNode() > 70 {
		t.Fatalf("suspiciously high locality %v%% with subset storage",
			res.MapLocality.PercentNode())
	}
}

func TestRunWithTraceExport(t *testing.T) {
	s, err := New(smallConfig(), Batch(Grep), SchedulerFair,
		WithSeed(3), WithScale(40))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	tr := s.Trace()
	if tr == nil || len(tr.Tasks) == 0 {
		t.Fatal("empty trace")
	}
	wantTasks := 0
	for _, j := range res.Jobs {
		wantTasks += j.NumMaps + j.NumReduces
	}
	if len(tr.Tasks) != wantTasks {
		t.Fatalf("trace has %d tasks, want %d", len(tr.Tasks), wantTasks)
	}
	if _, end := tr.Span(); end <= 0 {
		t.Fatal("trace span empty")
	}
}
