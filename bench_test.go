package mapsched

// Benchmark harness regenerating every table and figure of the paper's
// evaluation (Section III), plus the ablations in DESIGN.md and
// microbenchmarks of the core primitives.
//
//	go test -bench=. -benchmem
//
// The figure benches share one cached three-scheduler comparison (built
// once outside the timed region) and report the headline numbers via
// b.ReportMetric; the rendered tables are printed once. Full tables at
// canonical scale are produced by cmd/experiments.

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"

	"mapsched/internal/analysis"
	"mapsched/internal/core"
	"mapsched/internal/engine"
	"mapsched/internal/experiments"
	"mapsched/internal/faults"
	"mapsched/internal/hdfs"
	"mapsched/internal/job"
	"mapsched/internal/metrics"
	"mapsched/internal/obs"
	"mapsched/internal/sched"
	"mapsched/internal/sim"
	"mapsched/internal/topology"
	"mapsched/internal/workload"
)

// benchSetup is the experiment environment at benchmark scale: the full
// 60-node testbed with jobs scaled down so a batch run takes seconds.
func benchSetup() experiments.Setup {
	s := experiments.DefaultSetup()
	s.Workload.Scale = 12
	return s
}

var (
	benchCmp     *experiments.Comparison
	benchCmpErr  error
	benchCmpOnce sync.Once
	printOnce    sync.Once
)

func benchComparison(b *testing.B) *experiments.Comparison {
	b.Helper()
	benchCmpOnce.Do(func() {
		benchCmp, benchCmpErr = benchSetup().RunComparison()
	})
	if benchCmpErr != nil {
		b.Fatal(benchCmpErr)
	}
	return benchCmp
}

func printReports(c *experiments.Comparison) {
	printOnce.Do(func() {
		fmt.Fprintln(os.Stderr, experiments.TableIIReport())
		fmt.Fprintln(os.Stderr, experiments.Fig3().Report())
		fmt.Fprintln(os.Stderr, experiments.Fig4Report(c))
		fmt.Fprintln(os.Stderr, experiments.Fig5(c).Report())
		fmt.Fprintln(os.Stderr, experiments.Fig6Report(c))
		fmt.Fprintln(os.Stderr, experiments.TableIII(c).Report())
		fmt.Fprintln(os.Stderr, experiments.Fig7(c).Report())
		fmt.Fprintln(os.Stderr, experiments.Utilization(c).Report())
	})
}

// BenchmarkTableII_Workload regenerates Table II (the 30-job workload with
// its published task counts).
func BenchmarkTableII_Workload(b *testing.B) {
	var r experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.TableIIReport()
	}
	if len(r.Body) == 0 {
		b.Fatal("empty Table II")
	}
	b.ReportMetric(30, "jobs")
}

// BenchmarkFig3_DataSizeCDF regenerates the input/shuffle size CDFs.
func BenchmarkFig3_DataSizeCDF(b *testing.B) {
	var f experiments.Fig3Data
	for i := 0; i < b.N; i++ {
		f = experiments.Fig3()
	}
	b.ReportMetric(100*f.Shuffle.At(50e9), "pct_jobs_le_50GB_shuffle")
	b.ReportMetric(100*(1-f.Shuffle.At(100e9)), "pct_jobs_gt_100GB_shuffle")
}

// BenchmarkFig4_JobCompletionCDF regenerates the job-completion-time CDFs
// of the three schedulers over the three batches.
func BenchmarkFig4_JobCompletionCDF(b *testing.B) {
	c := benchComparison(b)
	printReports(c)
	b.ResetTimer()
	var rep experiments.Report
	for i := 0; i < b.N; i++ {
		rep = experiments.Fig4Report(c)
	}
	_ = rep
	for _, k := range experiments.SchedulerKinds() {
		b.ReportMetric(c.Results[k].JobCompletionCDF().Mean(), "meanJCT_"+k.String())
	}
}

// BenchmarkFig5_Reduction regenerates the per-job completion-time
// reduction CDFs (probabilistic vs coupling / fair).
func BenchmarkFig5_Reduction(b *testing.B) {
	c := benchComparison(b)
	b.ResetTimer()
	var f experiments.Fig5Data
	for i := 0; i < b.N; i++ {
		f = experiments.Fig5(c)
	}
	b.ReportMetric(100*f.AvgVsCoupling(), "avg_reduction_vs_coupling_pct")
	b.ReportMetric(100*f.AvgVsFair(), "avg_reduction_vs_fair_pct")
}

// BenchmarkFig6_TaskTimeCDF regenerates the map/reduce task running-time
// CDFs.
func BenchmarkFig6_TaskTimeCDF(b *testing.B) {
	c := benchComparison(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = experiments.Fig6Report(c)
	}
	for _, k := range experiments.SchedulerKinds() {
		b.ReportMetric(metrics.NewCDF(c.Results[k].MapTimes).Quantile(0.95), "p95_mapT_"+k.String())
	}
}

// BenchmarkTableIII_Locality regenerates the locality mix table.
func BenchmarkTableIII_Locality(b *testing.B) {
	c := benchComparison(b)
	b.ResetTimer()
	var d experiments.TableIIIData
	for i := 0; i < b.N; i++ {
		d = experiments.TableIII(c)
	}
	for _, k := range experiments.SchedulerKinds() {
		l := d.Locality[k]
		b.ReportMetric(l.PercentNode(), "pct_local_node_"+k.String())
	}
}

// BenchmarkFig7_LocalityVsSize regenerates map locality vs input size.
func BenchmarkFig7_LocalityVsSize(b *testing.B) {
	c := benchComparison(b)
	b.ResetTimer()
	var d experiments.Fig7Data
	for i := 0; i < b.N; i++ {
		d = experiments.Fig7(c)
	}
	if len(d.Sizes) == 0 {
		b.Fatal("no sizes")
	}
	k := experiments.Probabilistic
	b.ReportMetric(d.Percent[k][d.Sizes[0]], "pct_local_smallest_input")
	b.ReportMetric(d.Percent[k][d.Sizes[len(d.Sizes)-1]], "pct_local_largest_input")
}

// BenchmarkUtilization regenerates the slot-utilization comparison.
func BenchmarkUtilization(b *testing.B) {
	c := benchComparison(b)
	b.ResetTimer()
	var u experiments.UtilizationData
	for i := 0; i < b.N; i++ {
		u = experiments.Utilization(c)
	}
	for _, k := range experiments.SchedulerKinds() {
		b.ReportMetric(u.Reduce[k], "reduce_util_"+k.String())
	}
}

// BenchmarkPminSweep regenerates the P_min tuning experiment (10 Wordcount
// jobs per threshold).
func BenchmarkPminSweep(b *testing.B) {
	s := benchSetup()
	values := []float64{0.2, 0.4, 0.6}
	var pts []experiments.PminPoint
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = experiments.PminSweep(s, values)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		b.ReportMetric(float64(p.Unfinished), fmt.Sprintf("unfinished_pmin_%.1f", p.Pmin))
	}
}

// Full-simulation benches: one timed batch run per scheduler.

func benchBatchRun(b *testing.B, k experiments.SchedulerKind) {
	s := benchSetup()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := s.RunBatch(workload.Wordcount, s.BuilderFor(k))
		if err != nil {
			b.Fatal(err)
		}
		if res.Unfinished != 0 {
			b.Fatalf("unfinished jobs under %v", k)
		}
		if i == 0 {
			b.ReportMetric(res.JobCompletionCDF().Mean(), "meanJCT_s")
			b.ReportMetric(float64(res.Events), "sim_events")
		}
	}
}

func BenchmarkSimulation_Probabilistic(b *testing.B) {
	benchBatchRun(b, experiments.Probabilistic)
}

// BenchmarkSimulation_ProbabilisticObserved is the same batch with an
// observer attached consuming every event. The gap to
// BenchmarkSimulation_Probabilistic is the cost of the observability
// layer when it is actually on; with no observer the layer must be free
// (the <2% budget scripts/bench.sh tracks).
func BenchmarkSimulation_ProbabilisticObserved(b *testing.B) {
	s := benchSetup()
	specs, err := workload.Specs(workload.Batch(workload.Wordcount), s.Workload)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim, err := engine.New(s.Engine, specs, s.BuilderFor(experiments.Probabilistic))
		if err != nil {
			b.Fatal(err)
		}
		var seen uint64
		if err := sim.Attach(obs.Func(func(obs.Event) { seen++ })); err != nil {
			b.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			b.Fatal(err)
		}
		if res.Unfinished != 0 {
			b.Fatal("unfinished jobs under observed probabilistic")
		}
		if seen == 0 {
			b.Fatal("observer saw no events")
		}
		if i == 0 {
			b.ReportMetric(float64(seen), "obs_events")
		}
	}
}

// BenchmarkSimulation_ProbabilisticNaive is the reference path: same
// batch, same decisions, but with every cost recomputed from scratch on
// each scheduling round (ProbabilisticConfig.Naive). The gap to
// BenchmarkSimulation_Probabilistic is the end-to-end win of the
// incremental cost caches.
func BenchmarkSimulation_ProbabilisticNaive(b *testing.B) {
	s := benchSetup()
	cfg := sched.DefaultProbabilisticConfig()
	cfg.Pmin = s.Pmin
	cfg.Naive = true
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := s.RunBatch(workload.Wordcount, sched.NewProbabilistic(cfg))
		if err != nil {
			b.Fatal(err)
		}
		if res.Unfinished != 0 {
			b.Fatal("unfinished jobs under naive probabilistic")
		}
	}
}

// BenchmarkSimulation_FaultChurn is the same batch under a hostile fault
// plan — crashes, a slowdown, a degraded link, transient attempt
// failures — so it prices the whole recovery machinery: detection sweeps,
// task reversion, shuffle re-fetch, retries and blacklisting. The gap to
// BenchmarkSimulation_Probabilistic is the cost of fault churn; the
// fault-free bench itself must stay within the <2% budget vs the seed
// baseline, since a nil plan compiles the subsystem out of the hot path.
func BenchmarkSimulation_FaultChurn(b *testing.B) {
	s := benchSetup()
	s.Workload.Replication = 3
	s.Engine.Faults = faults.Plan{
		Crashes:      []faults.NodeCrash{{Node: 20, At: 20}, {Node: 40, At: 60}},
		Slowdowns:    []faults.NodeSlowdown{{Node: 10, At: 10, Duration: 120, Factor: 3}},
		Links:        []faults.LinkDegrade{{Node: 30, At: 15, Duration: 90, Factor: 0.2}},
		TaskFailProb: 0.05,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := s.RunBatch(workload.Wordcount, s.BuilderFor(experiments.Probabilistic))
		if err != nil {
			b.Fatal(err)
		}
		if res.Unfinished != 0 {
			b.Fatal("unfinished jobs under fault churn")
		}
		if i == 0 {
			b.ReportMetric(res.JobCompletionCDF().Mean(), "meanJCT_s")
			b.ReportMetric(float64(res.AttemptFailures), "attempt_fails")
			b.ReportMetric(float64(res.RelaunchedMaps+res.RelaunchedReduces), "relaunches")
		}
	}
}

// BenchmarkSimulation_OpenSystem runs one open-system sweep cell: the
// three-tenant continuous-arrival workload at load factor 0.9 under the
// probabilistic scheduler, with weighted admission and preemption on.
// Beyond wall-clock cost it reports the steady-state p99 job completion
// time — a deterministic function of the seed, so opensys_guard.sh can
// hold it to a budget and catch scheduling-policy regressions that a
// pure latency bench would miss.
func BenchmarkSimulation_OpenSystem(b *testing.B) {
	s := benchSetup()
	nodes := s.Engine.Topology.Racks * s.Engine.Topology.NodesPerRack
	plan := experiments.OpenPlan(nodes)
	tenants := experiments.CalibrateRates(experiments.OpenTenants(), 0.9, s)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := s.RunOpen(plan, tenants, s.BuilderFor(experiments.Probabilistic))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			jct := metrics.NewCDF(res.SteadyJCTs())
			if jct.N() == 0 {
				b.Fatal("open-system bench produced no steady-state completions")
			}
			b.ReportMetric(jct.Quantile(0.99), "p99_jct_s")
			b.ReportMetric(float64(res.Preemptions), "preemptions")
			b.ReportMetric(float64(res.RejectedJobs), "rejected")
		}
	}
}

func BenchmarkSimulation_Coupling(b *testing.B) { benchBatchRun(b, experiments.Coupling) }

func BenchmarkSimulation_Fair(b *testing.B) { benchBatchRun(b, experiments.Fair) }

// Macro benches of the parallel experiment harness: the full
// three-scheduler x three-batch comparison, once with the worker pool at
// GOMAXPROCS and once pinned to a single worker (the old sequential
// behaviour). The ratio is the harness speedup on this machine — but
// only when GOMAXPROCS > 1. The comparison fans out 9 leaf simulations
// (3 schedulers x 3 workload batches), so the pool saturates at
// min(9, GOMAXPROCS); on a single-core machine both variants execute one
// simulation at a time and any Parallel-vs-Serial delta is noise. Each
// run reports gomaxprocs so the output is self-describing.

func benchComparisonRun(b *testing.B, workers int) {
	s := benchSetup()
	if workers > 0 {
		experiments.SetMaxWorkers(workers)
		defer experiments.SetMaxWorkers(runtime.GOMAXPROCS(0))
	}
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
	for i := 0; i < b.N; i++ {
		c, err := s.RunComparison()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(c.Results[experiments.Probabilistic].JobCompletionCDF().Mean(), "meanJCT_prob")
		}
	}
}

func BenchmarkSimulation_ComparisonParallel(b *testing.B) { benchComparisonRun(b, 0) }

func BenchmarkSimulation_ComparisonSerial(b *testing.B) { benchComparisonRun(b, 1) }

// BenchmarkSimulation_ComparisonWorkers sweeps the worker-pool size over
// the useful range (the comparison has 9 leaf simulations). On a
// multi-core machine the curve rises until min(9, GOMAXPROCS) and then
// flattens; on a single-core machine it is flat by construction, which is
// the honest shape rather than a parallelism win.
func BenchmarkSimulation_ComparisonWorkers(b *testing.B) {
	for _, w := range []int{1, 2, 4, 9} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) { benchComparisonRun(b, w) })
	}
}

// Ablation benches (design choices called out in DESIGN.md).

func benchAblation(b *testing.B, run func(experiments.Setup) ([]experiments.AblationPoint, error)) {
	s := benchSetup()
	var pts []experiments.AblationPoint
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = run(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		b.ReportMetric(p.MeanJCT, "meanJCT_"+p.Variant)
	}
}

func BenchmarkAblation_Estimator(b *testing.B) {
	benchAblation(b, experiments.AblationEstimator)
}

func BenchmarkAblation_NetworkCondition(b *testing.B) {
	benchAblation(b, experiments.AblationNetworkCondition)
}

func BenchmarkAblation_Deterministic(b *testing.B) {
	benchAblation(b, experiments.AblationDeterministic)
}

func BenchmarkAblation_ReduceSpread(b *testing.B) {
	benchAblation(b, experiments.AblationReduceSpread)
}

func BenchmarkMultiRack(b *testing.B) {
	benchAblation(b, experiments.MultiRack)
}

// Microbenchmarks of the core primitives.

func microFixture(b *testing.B) (*core.CostModel, *job.Job) {
	b.Helper()
	spec := topology.DefaultSpec()
	net, err := topology.NewCluster(sim.NewEngine(), spec)
	if err != nil {
		b.Fatal(err)
	}
	rng := sim.NewRNG(1)
	store := hdfs.NewStore(net, rng)
	cm, err := core.NewCostModel(net, store, net, core.ModeHops)
	if err != nil {
		b.Fatal(err)
	}
	j, err := job.New(1, job.Spec{
		Name:       "bench",
		Profile:    workload.ProfileFor(workload.Wordcount),
		InputBytes: 100 * 128e6,
		BlockSize:  128e6,
		NumReduces: 30,
	}, store, rng)
	if err != nil {
		b.Fatal(err)
	}
	for i, m := range j.Maps {
		m.State = job.TaskDone
		m.Node = topology.NodeID(i % net.Size())
		m.Progress = 1
	}
	j.DoneMaps = len(j.Maps)
	return cm, j
}

func BenchmarkCore_MapCost(b *testing.B) {
	cm, j := microFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cm.MapCost(j.Maps[i%len(j.Maps)], topology.NodeID(i%60))
	}
}

func BenchmarkCore_ReduceCosterBuild(b *testing.B) {
	cm, j := microFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cm.NewReduceCoster(j, core.ProgressScaled{})
	}
}

// BenchmarkCore_ReduceCosterRefresh measures the incremental update after
// one map's progress changed — the per-heartbeat cost of keeping the
// shuffle matrix current, vs rebuilding it (BenchmarkCore_ReduceCosterBuild).
func BenchmarkCore_ReduceCosterRefresh(b *testing.B) {
	cm, j := microFixture(b)
	rc := cm.NewReduceCoster(j, core.ProgressScaled{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := j.Maps[i%len(j.Maps)]
		m.State = job.TaskRunning
		m.Progress = 0.5 + 0.4*float64(i%2)
		rc.Refresh()
	}
}

func BenchmarkCore_ReduceCostEval(b *testing.B) {
	cm, j := microFixture(b)
	rc := cm.NewReduceCoster(j, core.ProgressScaled{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = rc.Cost(topology.NodeID(i%60), i%30)
	}
}

func benchSelectMapTask(b *testing.B, cached bool) {
	cm, j := microFixture(b)
	for _, m := range j.Maps {
		m.State = job.TaskPending
		m.Node = -1
	}
	j.DoneMaps = 0
	avail := make([]topology.NodeID, 60)
	for i := range avail {
		avail[i] = topology.NodeID(i)
	}
	var ev core.MapCostEvaluator = cm.Evaluator()
	if cached {
		ev = cm.NewMapCoster()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := core.SelectMapTaskWith(ev, nil, j.Maps, topology.NodeID(i%60), core.NewAvail(avail)); !ok {
			b.Fatal("no candidate")
		}
	}
}

// BenchmarkCore_SelectMapTask runs Algorithm 1 through the MapCoster (the
// production path); the Naive variant recomputes every replica distance
// and cluster average per offer, as the seed implementation did.
func BenchmarkCore_SelectMapTask(b *testing.B) { benchSelectMapTask(b, true) }

func BenchmarkCore_SelectMapTaskNaive(b *testing.B) { benchSelectMapTask(b, false) }

func BenchmarkCore_AssignProb(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = core.AssignProb(float64(i%1000)+1, float64(i%700)+1)
	}
}

func benchFlowChurn(b *testing.B, forceFull bool) {
	eng := sim.NewEngine()
	net, err := topology.NewCluster(eng, topology.DefaultSpec())
	if err != nil {
		b.Fatal(err)
	}
	net.Net().SetForceFullRecompute(forceFull)
	rng := sim.NewRNG(3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Transfer(topology.NodeID(rng.Intn(60)), topology.NodeID(rng.Intn(60)), 1e6, nil)
		if eng.Pending() > 256 {
			for eng.Pending() > 0 {
				eng.Step()
			}
		}
	}
	if _, err := eng.RunAll(); err != nil {
		b.Fatal(err)
	}
	if !forceFull {
		b.ReportMetric(float64(net.Net().IncrementalRecomputes()), "inc_recomputes")
	}
}

// BenchmarkTopology_FlowChurn exercises max-min share recomputation under
// flow start/finish churn with the incremental component-local pass; the
// Full variant forces the old whole-network progressive filling on every
// churn event.
func BenchmarkTopology_FlowChurn(b *testing.B) { benchFlowChurn(b, false) }

func BenchmarkTopology_FlowChurnFull(b *testing.B) { benchFlowChurn(b, true) }

func BenchmarkSim_ScheduleStep(b *testing.B) {
	eng := sim.NewEngine()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Schedule(eng.Now()+1, func() {})
		eng.Step()
	}
}

func BenchmarkMetrics_CDFQuantile(b *testing.B) {
	vals := make([]float64, 10000)
	rng := sim.NewRNG(9)
	for i := range vals {
		vals[i] = rng.Float64()
	}
	cdf := metrics.NewCDF(vals)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cdf.Quantile(float64(i%100) / 100)
	}
}

func BenchmarkHDFS_Placement(b *testing.B) {
	net, err := topology.NewCluster(sim.NewEngine(), topology.DefaultSpec())
	if err != nil {
		b.Fatal(err)
	}
	store := hdfs.NewStore(net, sim.NewRNG(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := store.AddBlock(128e6, 2, hdfs.RackAware{}); err != nil {
			b.Fatal(err)
		}
	}
}

var _ = sched.FairJobs  // document the sched dependency of this harness
var _ = engine.Config{} // and the engine one

// Extension benches: the paper's future-work explorations and the
// related-work baselines.

func BenchmarkExtension_ProbabilityModels(b *testing.B) {
	s := benchSetup()
	var pts []experiments.AblationPoint
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = experiments.ModelComparison(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		b.ReportMetric(p.MeanJCT, "meanJCT_"+p.Variant)
	}
}

func BenchmarkExtension_AllSchedulers(b *testing.B) {
	s := benchSetup()
	var pts []experiments.AblationPoint
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = experiments.ExtendedComparison(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		b.ReportMetric(p.MeanJCT, "meanJCT_"+p.Variant)
	}
}

func BenchmarkExtension_FaultTolerance(b *testing.B) {
	s := benchSetup()
	var pts []experiments.FaultPoint
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = experiments.FaultTolerance(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		b.ReportMetric(p.FaultyJCT, "faultyJCT_"+p.Scheduler)
	}
}

func BenchmarkAnalysis_TradeoffCurve(b *testing.B) {
	costs := make([]float64, 60)
	for i := 1; i < 60; i++ {
		costs[i] = 2
	}
	pmins := []float64{0, 0.2, 0.4, 0.6, 0.8}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := analysis.TradeoffCurve(costs, core.Exponential{}, pmins); err != nil {
			b.Fatal(err)
		}
	}
}

// flatView hides a Cluster's ClassedNetwork interface so a hop-mode cost
// model over it takes the per-node path — the pre-class-collapse code,
// kept measurable as the baseline BenchmarkSelect_ClusterScale compares
// against. Distances are bit-identical to the classed view.
type flatView struct{ c *topology.Cluster }

func (f flatView) Size() int                             { return f.c.Size() }
func (f flatView) Distance(a, b topology.NodeID) float64 { return f.c.Distance(a, b) }
func (f flatView) Rack(a topology.NodeID) int            { return f.c.Rack(a) }

// scaleSelectFixture builds an idle cluster of the given size with one
// job of pending maps, returning the avail-set pair the benchmark
// toggles between (full set, and full set minus one node) with
// incrementally maintained per-class counts — the same churn-per-offer
// regime the engine produces when slots fill and free on every event.
func scaleSelectFixture(b *testing.B, nodes int) (*topology.Cluster, *hdfs.Store, *job.Job, [2]core.Avail) {
	b.Helper()
	spec := topology.DefaultSpec()
	spec.NodesPerRack = 20
	spec.Racks = nodes / 20
	cl, err := topology.NewCluster(sim.NewEngine(), spec)
	if err != nil {
		b.Fatal(err)
	}
	rng := sim.NewRNG(1)
	store := hdfs.NewStore(cl, rng)
	j, err := job.New(1, job.Spec{
		Name:        "scalebench",
		Profile:     workload.ProfileFor(workload.Wordcount),
		InputBytes:  100 * 128e6,
		BlockSize:   128e6,
		NumReduces:  30,
		Replication: 3,
	}, store, rng)
	if err != nil {
		b.Fatal(err)
	}
	full := make([]topology.NodeID, nodes)
	for i := range full {
		full[i] = topology.NodeID(i)
	}
	classes := cl.Classes()
	counts := make([]int, classes.Num())
	for _, n := range full {
		counts[classes.Of(n)]++
	}
	// Variant B: node 7 lost its free slot.
	partial := append(append([]topology.NodeID(nil), full[:7]...), full[8:]...)
	countsB := append([]int(nil), counts...)
	countsB[classes.Of(7)]--
	return cl, store, j, [2]core.Avail{
		{Nodes: full, Counts: counts, Version: 1},
		{Nodes: partial, Counts: countsB, Version: 2},
	}
}

// BenchmarkSelect_ClusterScale measures one Algorithm 1 slot offer (the
// per-heartbeat hot path) across cluster sizes, with the avail set
// churning on every offer as it does under live slot traffic:
//
//	classed - production path: class-collapsed C_avg + pruning (this PR)
//	pernode - the pre-PR cached path: per-node distance rows, O(nodes)
//	          re-summation per avail change
//	naive   - the seed path: direct Formula 1 over every (task, node)
//
// Per-offer time for classed grows with the number of distance classes
// (racks), not nodes; BENCH_scale.json records the trajectory.
func BenchmarkSelect_ClusterScale(b *testing.B) {
	for _, nodes := range []int{100, 500, 1000, 2000, 5000} {
		cl, store, j, avails := scaleSelectFixture(b, nodes)
		for _, variant := range []string{"classed", "pernode", "naive"} {
			var ev core.MapCostEvaluator
			switch variant {
			case "classed":
				cm, err := core.NewCostModel(cl, store, nil, core.ModeHops)
				if err != nil {
					b.Fatal(err)
				}
				if cm.Classes() == nil {
					b.Fatal("cluster did not collapse into classes")
				}
				ev = cm.NewMapCoster()
			case "pernode":
				cm, err := core.NewCostModel(flatView{cl}, store, nil, core.ModeHops)
				if err != nil {
					b.Fatal(err)
				}
				if cm.Classes() != nil {
					b.Fatal("flat view unexpectedly classed")
				}
				ev = cm.NewMapCoster()
			case "naive":
				cm, err := core.NewCostModel(flatView{cl}, store, nil, core.ModeHops)
				if err != nil {
					b.Fatal(err)
				}
				ev = cm.Evaluator()
			}
			b.Run(fmt.Sprintf("n%d/%s", nodes, variant), func(b *testing.B) {
				version := uint64(3)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					a := avails[i%2]
					a.Version = version // distinct identity per offer: the churn regime
					version++
					if _, ok := core.SelectMapTaskWith(ev, nil, j.Maps, topology.NodeID(i%nodes), a); !ok {
						b.Fatal("no candidate")
					}
				}
			})
		}
	}
}
