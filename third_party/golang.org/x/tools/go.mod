// Local vendor of the golang.org/x/tools subset needed by the schedlint
// analyzers (go/analysis core, unitchecker, inspector and their internal
// dependencies), taken verbatim from the Go toolchain's cmd/vendor tree
// (golang.org/x/tools v0.28.1-0.20250131145412-98746475647e). The main
// module pins this exact version and points at this directory with a
// replace directive, so builds need no network access.
module golang.org/x/tools

go 1.22.0
