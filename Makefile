# Development entry points. `make check` is the full gate run before
# committing: vet, the schedlint static contracts, build, the complete
# test suite under the race detector, a short benchmark smoke proving
# the perf-critical benches still run, and a short native-fuzz smoke
# over the parser/decoder fuzz targets. `make bench` regenerates
# BENCH_baseline.json and BENCH_scale.json.

GO ?= go
SCHEDLINT ?= bin/schedlint

.PHONY: all build vet lint lint-json lint-fix test race bench-smoke fuzz-smoke bench check experiments FORCE

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# schedlint statically enforces the simulator's determinism, cache
# invalidation, concurrency and persistence contracts (see DESIGN.md
# §12 and §17): nodeterminism, epochbump, poolreset, obsvocab,
# optflag, lockheld, snapshotfree, deltajournal and errcmp, run
# through the `go vet` tool protocol.
$(SCHEDLINT): FORCE
	$(GO) build -o $(SCHEDLINT) ./cmd/schedlint

lint: $(SCHEDLINT)
	$(GO) vet -vettool=$(SCHEDLINT) ./...

# Machine-readable diagnostics (JSON with byte-offset suggested
# fixes) for CI annotations; exits zero even with findings. The go
# command routes the tool's JSON to stderr, so merge it onto stdout
# to make the stream pipeable.
lint-json: $(SCHEDLINT)
	$(GO) vet -vettool=$(SCHEDLINT) -json ./... 2>&1

# Apply the mechanical rewrites the analyzers suggest (errcmp's
# errors.Is splices): emit JSON diagnostics, pipe them back into the
# -apply subcommand, then re-lint to confirm the tree is clean.
lint-fix: $(SCHEDLINT)
	$(GO) vet -vettool=$(SCHEDLINT) -json ./... 2>&1 | $(SCHEDLINT) -apply
	$(GO) vet -vettool=$(SCHEDLINT) ./...

FORCE:

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Quick smoke of the performance-critical benchmarks (fixed small
# iteration counts; seconds, not minutes). The fault-churn macro bench
# runs once so recovery-path regressions and stalls surface in CI, the
# cluster-scale selection bench runs its whole 100→5000-node grid so a
# scaling regression in the class-collapsed hot path surfaces too, and
# the placement-service bench exercises the concurrent decide path at
# 1/4/8 readers before placement_guard.sh holds its p99 budget and
# journal_guard.sh the journal-on delta budget. The open-system cell
# runs once inside opensys_guard.sh, which holds the deterministic
# steady-state p99 JCT to its BENCH_opensys.json budget.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkCore_|BenchmarkTopology_FlowChurn' \
		-benchmem -benchtime 200x .
	$(GO) test -run '^$$' -bench 'BenchmarkSimulation_FaultChurn' \
		-benchmem -benchtime 1x .
	$(GO) test -run '^$$' -bench 'BenchmarkSelect_ClusterScale' \
		-benchmem -benchtime 20x .
	$(GO) test -run '^$$' -bench 'BenchmarkPlacement_Decide' \
		-benchmem -benchtime 500x .
	sh scripts/alloc_guard.sh
	sh scripts/placement_guard.sh
	sh scripts/journal_guard.sh
	sh scripts/opensys_guard.sh

# Short native-fuzz smoke over every parser/decoder fuzz target in the
# tree: seeds plus a few seconds of mutation each, so a crash in the
# journal decoder or the fault-plan DSL parser surfaces in CI without a
# dedicated long-running fuzz job.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz 'FuzzDecodeJournal' -fuzztime 5s ./internal/placement
	$(GO) test -run '^$$' -fuzz 'FuzzParsePlan' -fuzztime 5s ./internal/faults
	$(GO) test -run '^$$' -fuzz 'FuzzCDF' -fuzztime 5s ./internal/metrics
	$(GO) test -run '^$$' -fuzz 'FuzzHistogramQuantile' -fuzztime 5s ./internal/metrics
	$(GO) test -run '^$$' -fuzz 'FuzzAssignProb' -fuzztime 5s ./internal/core

# Full benchmark pass; records results in BENCH_baseline.json and
# the cluster-size trajectory in BENCH_scale.json.
bench:
	sh scripts/bench.sh

check: vet lint build race bench-smoke fuzz-smoke

# Regenerate the paper's tables and figures at the canonical scale.
experiments:
	$(GO) run ./cmd/experiments -run all -scale 3
